package core

import (
	"container/heap"
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/par"
	"github.com/mistralcloud/mistral/internal/provenance"
)

// SearchOptions tunes the adaptation search of §IV-B.
type SearchOptions struct {
	// SelfAware enables Algorithm 1's self-cost accounting and dynamic
	// pruning; false yields the Naive A* baseline.
	SelfAware bool
	// PruneFraction is the fraction of expanded children kept once the
	// Self-Aware trigger fires (default 0.05, the paper's top 5%).
	PruneFraction float64
	// PruneMinKeep floors the pruned width (default 6): a beam of one or
	// two children collapses into already-visited configurations and
	// drains the frontier before any plan is found.
	PruneMinKeep int
	// DelayFraction is the search delay threshold T̄ as a fraction of the
	// control window (default 0.05, the paper's 5%).
	DelayFraction float64
	// TimePerChild is the simulated decision-making time charged per
	// generated child vertex; it makes self-awareness deterministic
	// (default 250 µs, calibrated to the paper's search durations).
	TimePerChild time.Duration
	// SearchWatts is the power drawn by the controller host while
	// searching; the paper measures ≈12% over a 60 W idle host (default
	// 67 W).
	SearchWatts float64
	// MaxExpansions bounds the number of vertex expansions as a safety
	// valve (default 2500). When hit, the best candidate found so far is
	// returned.
	MaxExpansions int
	// MaxSearchTime is a hard deadline on the search's simulated elapsed
	// time (Expanded·TimePerChild bookkeeping, so it stays deterministic
	// at any Workers setting). When hit, the best candidate found so far
	// is returned and the result is marked Truncated. Zero disables it;
	// the Self-Aware deadline (2× the delay budget) usually fires first.
	MaxSearchTime time.Duration
	// ShapingFraction controls how strongly the search discounts its
	// cost-to-go by §IV-B's weighted Euclidean distance to the ideal
	// configuration: traversing the entire root-to-ideal distance forfeits
	// this fraction of the potential gain (default 0.8; set negative to
	// disable). Values near 1 turn the search into greedy descent toward
	// c*. Both variants shape (a pure admissible bound degenerates into
	// near-exhaustive exploration); what distinguishes Self-Aware is the
	// width pruning, decision deadline, and expected-utility budget.
	ShapingFraction float64
	// EpsilonMargin terminates the search once the best candidate found is
	// within this fraction of the theoretical utility upper bound
	// (default 0.01). The admissible heuristic makes shallow intermediates
	// look marginally better than any reachable candidate, so exact A*
	// degenerates into near-exhaustive search — precisely the blow-up
	// §IV-B describes; the margin bounds that tail for the naive search
	// without affecting which plan wins by more than ε.
	EpsilonMargin float64
	// Workers bounds the goroutines evaluating an expansion's children
	// concurrently (default min(GOMAXPROCS, 8); 1 reproduces the serial
	// path exactly). Results are merged in enumeration order, so the plan,
	// pruning, and self-aware accounting are identical at every setting —
	// only wall-clock time changes. The simulated decision-making time
	// (TimePerChild per child) deliberately ignores Workers: it models the
	// paper's single controller host.
	Workers int
	// Provenance enables the search flight recorder: the returned
	// SearchResult carries a bounded provenance.SearchDigest (expanded
	// vertices with f/g/h, pruning events with reasons, termination, the
	// chosen plan's Eq. 3 ledger, and the top rejected frontier
	// alternatives). False — the default — costs one nil check per
	// expansion and leaves results bit-identical to an uninstrumented
	// search.
	Provenance bool
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.PruneFraction <= 0 || o.PruneFraction > 1 {
		o.PruneFraction = 0.05
	}
	if o.PruneMinKeep <= 0 {
		o.PruneMinKeep = 6
	}
	if o.DelayFraction <= 0 {
		o.DelayFraction = 0.05
	}
	if o.TimePerChild <= 0 {
		o.TimePerChild = 250 * time.Microsecond
	}
	if o.SearchWatts <= 0 {
		o.SearchWatts = 67
	}
	if o.MaxExpansions <= 0 {
		o.MaxExpansions = 2500
	}
	if o.EpsilonMargin <= 0 {
		o.EpsilonMargin = 0.01
	}
	switch {
	case o.ShapingFraction == 0:
		o.ShapingFraction = 0.8
	case o.ShapingFraction < 0:
		o.ShapingFraction = 0
	case o.ShapingFraction > 1:
		o.ShapingFraction = 1
	}
	o.Workers = par.Workers(o.Workers)
	return o
}

// ExpectedUtility carries the controller's pessimistic estimate UH of the
// utility a control window should deliver, with the rates used to decay it
// during the search (Algorithm 1's URT_H and Upwr_H, in dollars/second).
type ExpectedUtility struct {
	Total    float64 // UH, dollars over the window
	PerfRate float64
	PwrRate  float64 // non-positive
}

// SearchResult is a completed search.
type SearchResult struct {
	// Plan is the optimal action sequence (possibly empty: stay put).
	Plan []cluster.Action
	// Utility is Eq. 3 evaluated for the plan over the control window.
	Utility float64
	// SearchTime is the simulated decision-making time.
	SearchTime time.Duration
	// SearchCost is the dollar cost of the decision itself: power drawn by
	// the controller host over SearchTime.
	SearchCost float64
	// Expanded counts vertex expansions; Generated counts children created.
	Expanded, Generated int
	// Pruned reports whether Self-Aware pruning fired.
	Pruned bool
	// Truncated reports the expansion cap was hit (best-so-far returned).
	Truncated bool

	// Fields below exist so observability spans can be populated without
	// re-deriving search state.

	// PeakFrontier is the largest open-set size reached.
	PeakFrontier int
	// RootDistance is ConfigDistance from the starting configuration to
	// the ideal one (0 when they are equal).
	RootDistance float64
	// PrunedChildren counts children discarded by Self-Aware pruning.
	PrunedChildren int
	// Prov is the flight-recorder digest of this search; nil unless
	// SearchOptions.Provenance is set.
	Prov *provenance.SearchDigest
}

// vertex is a node in the search graph. Its configuration shares unchanged
// maps with its parent's (CloneShared + ApplyDelta), its identity is the
// O(1) 128-bit fingerprint instead of a sorted key string, and its plan is
// reconstructed on demand from the parent chain instead of being copied
// into every child.
type vertex struct {
	cfg      cluster.Config
	fp       cluster.Fingerprint
	parent   *vertex        // expansion parent; nil at the root
	act      cluster.Action // action that produced this vertex from parent
	depth    int            // plan length (root: 0)
	dur      time.Duration  // total duration of plan
	accrued  float64        // utility accrued while executing plan, dollars
	utility  float64        // priority: accrued + remaining-window bound
	finished bool           // reached via the "null" action
	index    int            // heap position
}

// planOf rebuilds the action sequence leading to v by walking the parent
// chain. Root (and finished-at-root) vertices yield a nil plan, matching
// the stay-put decision's representation.
func planOf(v *vertex) []cluster.Action {
	if v == nil || v.depth == 0 {
		return nil
	}
	plan := make([]cluster.Action, v.depth)
	for cur := v; cur != nil && cur.depth > 0; cur = cur.parent {
		plan[cur.depth-1] = cur.act
	}
	return plan
}

// childDesc is a staged child during expansion: everything the dedup,
// pruning, and priority logic needs, produced without cloning the parent
// configuration. Only descriptors that survive dedup and pruning are
// materialized into vertices.
type childDesc struct {
	ok      bool
	act     cluster.Action
	delta   cluster.Delta
	fp      cluster.Fingerprint
	dur     time.Duration
	accrued float64
	utility float64
	dist    float64 // distance to ideal, for pruning/shaping
}

type vertexHeap []*vertex

func (h vertexHeap) Len() int           { return len(h) }
func (h vertexHeap) Less(i, j int) bool { return h[i].utility > h[j].utility }
func (h vertexHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *vertexHeap) Push(x any)        { v := x.(*vertex); v.index = len(*h); *h = append(*h, v) }
func (h *vertexHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	v.index = -1
	*h = old[:n-1]
	return v
}

// Searcher runs adaptation searches against an evaluator.
type Searcher struct {
	eval *Evaluator
	opts SearchOptions

	// vpool recycles search vertices across expansions and searches.
	// Stale duplicates popped from the frontier were never expanded, so
	// nothing references them and they return to the pool immediately.
	vpool sync.Pool

	// Observability sinks, resolved at construction (see obs.SetDefault)
	// and rebindable with SetObserver. All are nil-safe no-ops when
	// observability is disabled.
	log         *slog.Logger
	tr          *obs.Tracer
	cInvoked    *obs.Counter
	cExpanded   *obs.Counter
	cGenerated  *obs.Counter
	cPruned     *obs.Counter
	cTruncated  *obs.Counter
	hExpansions *obs.Histogram
	hSearchMS   *obs.Histogram
	hBatch      *obs.Histogram
	gWorkers    *obs.Gauge

	// Trace context for expansion-batch events: tc identifies the
	// window, tcName the owning controller (span-ID uniqueness across
	// parallel 1st-level searches), traceBase the search's virtual start
	// time (set by the controller each Decide). Observational only.
	tc        obs.TraceContext
	tcName    string
	traceBase time.Duration
}

// expandBatchEvery is how many expansions one "search:batch" trace
// event covers — coarse enough that a 2 500-expansion search stays
// under ~40 events, fine enough to localize a stall inside the search.
const expandBatchEvery = 64

// SetTrace installs the current window's trace context under the given
// controller name; subsequent searches emit "search:batch" events
// carrying the shared trace ID.
func (s *Searcher) SetTrace(tc obs.TraceContext, name string) {
	s.tc = tc
	s.tcName = name
}

// NewSearcher builds a searcher.
func NewSearcher(eval *Evaluator, opts SearchOptions) *Searcher {
	s := &Searcher{eval: eval, opts: opts.withDefaults()}
	s.vpool.New = func() any { return new(vertex) }
	s.SetObserver(obs.Default())
	return s
}

// getVertex draws a zeroed vertex from the pool.
func (s *Searcher) getVertex() *vertex {
	return s.vpool.Get().(*vertex)
}

// putVertex returns a vertex nothing references anymore. The struct is
// cleared so pooled vertices do not pin configuration maps or parents.
func (s *Searcher) putVertex(v *vertex) {
	*v = vertex{}
	s.vpool.Put(v)
}

// SetObserver rebinds the searcher's observability sinks (construction
// resolves the process default); pass nil to disable.
func (s *Searcher) SetObserver(o *obs.Observer) {
	s.log = o.Logger()
	s.tr = o.Tracer()
	s.cInvoked = o.Counter("search_invocations_total")
	s.cExpanded = o.Counter("search_expansions_total")
	s.cGenerated = o.Counter("search_generated_total")
	s.cPruned = o.Counter("search_pruned_children_total")
	s.cTruncated = o.Counter("search_truncated_total")
	s.hExpansions = o.Histogram("search_expansions", []float64{10, 50, 100, 250, 500, 1000, 2500})
	s.hSearchMS = o.Histogram("search_time_ms", []float64{1, 5, 10, 50, 100, 500, 1000, 5000})
	s.hBatch = o.Histogram("search_batch_children", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	s.gWorkers = o.Gauge("search_workers")
}

// Search finds the action sequence maximizing Eq. 3 from configuration cfg
// under the given workload, control window cw, ideal configuration (the
// admissible cost-to-go), and action space. expected carries UH for the
// Self-Aware trigger; it is ignored by the naive search.
func (s *Searcher) Search(cfg cluster.Config, rates map[string]float64, cw time.Duration, ideal Ideal, expected ExpectedUtility, space cluster.ActionSpace) (SearchResult, error) {
	res, err := s.search(cfg, rates, cw, ideal, expected, space)
	if err == nil {
		s.record(res)
	}
	return res, err
}

// record flushes one completed search into the metrics registry.
func (s *Searcher) record(res SearchResult) {
	if s.cInvoked == nil {
		return
	}
	s.cInvoked.Inc()
	s.gWorkers.Set(float64(s.opts.Workers))
	s.cExpanded.Add(int64(res.Expanded))
	s.cGenerated.Add(int64(res.Generated))
	s.cPruned.Add(int64(res.PrunedChildren))
	if res.Truncated {
		s.cTruncated.Inc()
	}
	s.hExpansions.Observe(float64(res.Expanded))
	s.hSearchMS.Observe(float64(res.SearchTime) / float64(time.Millisecond))
}

func (s *Searcher) search(cfg cluster.Config, rates map[string]float64, cw time.Duration, ideal Ideal, expected ExpectedUtility, space cluster.ActionSpace) (SearchResult, error) {
	opts := s.opts
	cwSec := cw.Seconds()
	if cwSec <= 0 {
		return SearchResult{}, fmt.Errorf("core: non-positive control window %v", cw)
	}
	idealRate := ideal.Steady.NetRate()
	// One workload fingerprint for the whole search: every steady lookup
	// below shares it instead of re-fingerprinting the rates map per child.
	rfp := s.eval.RatesFingerprint(rates)

	// As in the paper: if the ideal configuration equals the current one,
	// no adaptation is worth considering.
	if ideal.Config.Equal(cfg) {
		st, err := s.eval.SteadyFP(cfg, rates, rfp)
		if err != nil {
			return SearchResult{}, err
		}
		res := SearchResult{Utility: cwSec * st.NetRate()}
		if opts.Provenance {
			res.Prov = newDigestBuilder(0).finalize(provenance.TermNoChange, &res,
				s.eval.PlanLedger(cfg, rates, cw, nil), nil)
		}
		return res, nil
	}

	remaining := func(d time.Duration) float64 {
		r := (cw - d).Seconds()
		if r < 0 {
			return 0
		}
		return r
	}

	// Distance shaping: the admissible bound (CW−D)·U* is identical for
	// every intermediate, so best-first search would wander plateaus of
	// near-free actions. The same weighted Euclidean distance §IV-B defines
	// for pruning is folded into the cost-to-go as a penalty scaled so that
	// traversing the full distance from the current configuration to the
	// ideal one forfeits opts.ShapingFraction of the potential gain (0.8 by
	// default — see SearchOptions.ShapingFraction). This grades the
	// frontier toward c* at the price of ε-bounded (rather than exact)
	// optimality.
	curRate := 0.0
	if st, err := s.eval.SteadyFP(cfg, rates, rfp); err == nil {
		curRate = st.NetRate()
	}
	// dc folds the same distance as ConfigDistance, bit-for-bit, against
	// per-search precomputed ideal state — and can measure a staged child
	// through its Delta overlay before the child exists.
	dc := newDistancer(s.eval.cat, ideal.Config)
	rootDist := dc.distance(cfg, nil)
	var distWeight float64
	if gain := (idealRate - curRate) * cwSec; gain > 0 && rootDist > 1e-9 {
		distWeight = opts.ShapingFraction * gain / rootDist
	}

	root := &vertex{cfg: cfg, fp: cfg.Fingerprint()}
	root.utility = root.accrued + remaining(root.dur)*idealRate
	if distWeight > 0 {
		root.utility -= distWeight * rootDist
	}

	open := &vertexHeap{}
	heap.Init(open)
	heap.Push(open, root)
	bestByKey := map[cluster.Fingerprint]float64{root.fp: root.utility}

	res := SearchResult{RootDistance: rootDist, PeakFrontier: 1}
	var bestCandidate *vertex
	var dig *digestBuilder
	if opts.Provenance {
		dig = newDigestBuilder(rootDist)
	}
	dbg := s.log.Enabled(context.Background(), slog.LevelDebug)

	// Self-awareness state (Algorithm 1). The cost of searching has two
	// parts: the power the controller host burns (UpwrT) and the utility
	// forgone by lingering in the current configuration instead of an
	// expected-quality one while the search runs (UT). When their sum
	// reaches the expected utility UH of the coming window — or the delay
	// threshold T̄ passes — the search restricts its width. A system
	// bleeding utility therefore triggers restriction almost immediately:
	// deciding soon beats deciding optimally.
	searchRate := -s.eval.util.PowerRate(opts.SearchWatts) // $/s burned by searching
	uh := expected.Total
	var ut, upwrT float64
	var elapsed time.Duration
	curSteady, err := s.eval.SteadyFP(cfg, rates, rfp)
	if err != nil {
		return SearchResult{}, err
	}
	expectedRate := expected.PerfRate + expected.PwrRate
	forgoneRate := expectedRate - curSteady.NetRate()
	if forgoneRate < 0 {
		forgoneRate = 0 // a current config above expectations forgoes nothing
	}
	delayThreshold := time.Duration(float64(cw) * opts.DelayFraction)

	finish := func(v *vertex, term string) SearchResult {
		res.Plan = planOf(v)
		res.Utility = v.utility
		res.SearchTime = elapsed
		res.SearchCost = upwrT
		if dig != nil {
			res.Prov = dig.finalize(term, &res,
				s.eval.PlanLedger(cfg, rates, cw, res.Plan),
				harvestRejected(s.eval, open, bestByKey, v, cfg, ideal.Config, rates, cw))
		}
		return res
	}

	// stayPut ends the search with no adaptation (the frontier drained or a
	// cap fired before any candidate was found): keep the current
	// configuration for the window.
	stayPut := func(term string) (SearchResult, error) {
		st, err := s.eval.SteadyFP(cfg, rates, rfp)
		if err != nil {
			return SearchResult{}, err
		}
		res.SearchTime = elapsed
		res.SearchCost = upwrT
		res.Utility = cwSec * st.NetRate()
		if dig != nil {
			res.Prov = dig.finalize(term, &res,
				s.eval.PlanLedger(cfg, rates, cw, nil),
				harvestRejected(s.eval, open, bestByKey, nil, cfg, ideal.Config, rates, cw))
		}
		return res, nil
	}

	// Scratch reused across expansions so the steady-state loop allocates
	// only for surviving children and heap growth.
	var descs []childDesc
	var pruneIdx []int
	var warm []*vertex
	var batchStart time.Duration // virtual start of the current trace batch

	slack := opts.EpsilonMargin * (math.Abs(idealRate)*cwSec + 1e-9)
	for open.Len() > 0 {
		vmax := heap.Pop(open).(*vertex)
		if vmax.utility < bestByKey[vmax.fp]-1e-12 && !vmax.finished {
			// Stale duplicate: a better path to this configuration was
			// found after this vertex was pushed. It was never expanded, so
			// nothing references it and it can be recycled.
			s.putVertex(vmax)
			continue
		}
		if vmax.finished {
			return finish(vmax, provenance.TermGoal), nil
		}
		// ε-termination: the frontier's optimism has decayed to within the
		// margin of the best complete plan.
		if bestCandidate != nil && bestCandidate.utility >= vmax.utility-slack {
			// The popped head goes back on the heap first: it is the very
			// alternative the search declined to explore, and the rejected
			// digest should lead with it.
			if dig != nil {
				heap.Push(open, vmax)
			}
			return finish(bestCandidate, provenance.TermEpsilon), nil
		}
		// Self-aware deadline: once the search has run twice past its delay
		// budget it commits to the best complete plan found — a suboptimal
		// decision now beats an optimal one whose cost is never recouped
		// ("consuming power to save power").
		if opts.SelfAware && elapsed >= 2*delayThreshold && bestCandidate != nil {
			if dig != nil {
				heap.Push(open, vmax)
			}
			return finish(bestCandidate, provenance.TermDeadline), nil
		}
		if res.Expanded >= opts.MaxExpansions ||
			(opts.MaxSearchTime > 0 && elapsed >= opts.MaxSearchTime) {
			res.Truncated = true
			term := provenance.TermMaxExpansions
			if res.Expanded < opts.MaxExpansions {
				term = provenance.TermMaxSearchTime
			}
			if dig != nil {
				heap.Push(open, vmax)
			}
			if bestCandidate != nil {
				return finish(bestCandidate, term), nil
			}
			// No candidate seen: stay put.
			return stayPut(term)
		}
		res.Expanded++
		// Expansion-batch trace events: every expandBatchEvery expansions
		// close one "search:batch" span carrying the window's trace ID,
		// so a slow search localizes to a batch on the causal timeline.
		if s.tr != nil && s.tc.Enabled() && res.Expanded%expandBatchEvery == 0 {
			s.tr.Event("search:batch", s.traceBase+batchStart, s.traceBase+elapsed,
				s.tc.Attr(),
				obs.Attr{Key: "span", Value: s.tc.SpanID(s.tcName, "search", fmt.Sprintf("batch%04d", res.Expanded/expandBatchEvery))},
				obs.Attr{Key: "controller", Value: s.tcName},
				obs.Attr{Key: "expanded", Value: res.Expanded},
				obs.Attr{Key: "generated", Value: res.Generated},
				obs.Attr{Key: "frontier", Value: open.Len()})
			batchStart = elapsed
		}
		if dig != nil {
			dig.vertex(res.Expanded, vmax.depth, vmax.utility, vmax.accrued,
				dc.distance(vmax.cfg, nil), open.Len())
		}
		if dbg && res.Expanded%50 == 1 {
			s.log.Debug("search pop",
				"expanded", res.Expanded,
				"utility", vmax.utility,
				"depth", vmax.depth,
				"plan_dur", vmax.dur,
				"distance", dc.distance(vmax.cfg, nil),
				"accrued", vmax.accrued,
				"frontier", open.Len())
		}

		parentSteady, err := s.eval.SteadyFP(vmax.cfg, rates, rfp)
		if err != nil {
			return SearchResult{}, err
		}

		// Generate children: every feasible action plus "null" when the
		// configuration is a candidate. Children are *staged*, not built:
		// each worker validates its action (Stage), prices the transient
		// (against the parent configuration), and derives the child's
		// fingerprint, distance, and priority through the Delta overlay —
		// no map is cloned. Workers fill per-action slots merged in
		// enumeration order, so the frontier — and with it the plan,
		// pruning, and self-aware accounting — is byte-identical at every
		// Workers setting. Only children that survive dedup and pruning
		// are materialized, as copy-on-write clones of the parent.
		actions := cluster.Enumerate(s.eval.cat, vmax.cfg, space)
		var finChild *vertex
		if vmax.cfg.IsCandidate(s.eval.cat) {
			finChild = s.getVertex()
			*finChild = vertex{
				cfg:      vmax.cfg,
				fp:       vmax.fp,
				parent:   vmax.parent,
				act:      vmax.act,
				depth:    vmax.depth,
				dur:      vmax.dur,
				accrued:  vmax.accrued,
				finished: true,
			}
			finChild.utility = vmax.accrued + remaining(vmax.dur)*parentSteady.NetRate()
		}
		if cap(descs) < len(actions) {
			descs = make([]childDesc, len(actions))
		}
		descs = descs[:len(actions)]
		par.For(len(actions), opts.Workers, func(i int) {
			descs[i] = childDesc{}
			filled, delta, err := cluster.Stage(s.eval.cat, vmax.cfg, actions[i])
			if err != nil {
				return
			}
			ac := s.eval.Action(vmax.cfg, parentSteady, filled, rates)
			// A plan must fit the control window: actions past its end
			// would be charged against benefits the window cannot see —
			// when the current configuration is bleeding, arbitrarily long
			// plans would otherwise look free beyond the horizon.
			if vmax.dur+ac.Duration > cw {
				return
			}
			d := &descs[i]
			d.act = filled
			d.delta = delta
			d.fp = vmax.cfg.FingerprintWith(delta)
			d.dur = vmax.dur + ac.Duration
			d.accrued = vmax.accrued + ac.Duration.Seconds()*ac.Rate
			d.dist = dc.distance(vmax.cfg, &d.delta)
			d.utility = d.accrued + remaining(d.dur)*idealRate
			if distWeight > 0 {
				d.utility -= distWeight * d.dist
			}
			d.ok = true
		})
		nChildren := 0
		if finChild != nil {
			nChildren++
		}
		for i := range descs {
			if descs[i].ok {
				nChildren++
			}
		}
		res.Generated += nChildren
		s.hBatch.Observe(float64(nChildren))

		// order lists the surviving children as descriptor indices (-1 is
		// the finished candidate), in the sequence they reach the heap:
		// enumeration order normally, distance-sorted order after a prune —
		// insertion order breaks heap ties, so it must match what inserting
		// pruneByDistance's sorted output produced.
		order := pruneIdx[:0]
		if finChild != nil {
			order = append(order, -1)
		}
		for i := range descs {
			if descs[i].ok {
				order = append(order, i)
			}
		}

		// Self-aware accounting: charge the time spent producing this
		// expansion, then prune if the search has outspent its budget.
		t := time.Duration(nChildren) * opts.TimePerChild
		elapsed += t
		upwrT += t.Seconds() * searchRate
		ut += t.Seconds() * forgoneRate
		uh -= t.Seconds() * expectedRate
		if opts.SelfAware && ((ut+upwrT) >= uh || elapsed >= delayThreshold) {
			before := nChildren
			keep := int(math.Ceil(float64(nChildren) * opts.PruneFraction))
			if keep < opts.PruneMinKeep {
				keep = opts.PruneMinKeep
			}
			if keep < nChildren {
				// Keep the fraction closest to the ideal: the finished
				// candidate (distance -1) is never pruned, ties keep
				// enumeration order (stable sort).
				distAt := func(i int) float64 {
					if i < 0 {
						return -1
					}
					return descs[i].dist
				}
				sort.SliceStable(order, func(a, b int) bool { return distAt(order[a]) < distAt(order[b]) })
				order = order[:keep]
				nChildren = keep
			}
			res.PrunedChildren += before - nChildren
			res.Pruned = true
			if dig != nil && before > nChildren {
				// Algorithm 1 has two triggers; name the one that fired
				// (budget wins when both hold — it is the stronger signal).
				reason := provenance.ReasonDelayThreshold
				if (ut + upwrT) >= uh {
					reason = provenance.ReasonUtilityBudget
				}
				dig.event(res.Expanded, provenance.EventWidthPrune, reason, before-nChildren, elapsed)
			}
		}
		pruneIdx = order[:0]

		warm = warm[:0]
		for _, i := range order {
			if i < 0 {
				if bestCandidate == nil || finChild.utility > bestCandidate.utility {
					bestCandidate = finChild
				}
				heap.Push(open, finChild)
				continue
			}
			d := &descs[i]
			if prev, seen := bestByKey[d.fp]; seen && d.utility <= prev {
				continue
			}
			bestByKey[d.fp] = d.utility
			// Materialize the survivor: a copy-on-write clone sharing the
			// parent's maps, with only the map the delta touches copied.
			// Done serially — the parent is frozen from here on.
			ccfg := vmax.cfg.CloneShared()
			ccfg.ApplyDelta(d.delta)
			child := s.getVertex()
			*child = vertex{
				cfg:     ccfg,
				fp:      d.fp,
				parent:  vmax,
				act:     d.act,
				depth:   vmax.depth + 1,
				dur:     d.dur,
				accrued: d.accrued,
				utility: d.utility,
			}
			heap.Push(open, child)
			warm = append(warm, child)
		}
		if open.Len() > res.PeakFrontier {
			res.PeakFrontier = open.Len()
		}
		// Pre-solve the steady states the coming expansions will look up,
		// in parallel: the per-pop LQN solve is the search's serial
		// bottleneck, and the memo cache turns these into hits. Results are
		// pure and errors are dropped — a failing configuration fails
		// identically when popped — so decisions do not depend on this
		// (only wall-clock time and cache statistics do). Skipped at one
		// worker, where it could only add work.
		if opts.Workers > 1 && len(warm) > 1 {
			par.For(len(warm), opts.Workers, func(i int) {
				_, _ = s.eval.SteadyFP(warm[i].cfg, rates, rfp)
			})
		}
	}

	// Open set exhausted without a finished vertex (tiny action spaces):
	// stay put.
	return stayPut(provenance.TermExhausted)
}

// Distance weights: roughly proportional to the transient cost of the
// action that repairs each kind of mismatch, so that the shaped cost-to-go
// refunds structural progress (host power, placement) in proportion to what
// reaching it costs, instead of letting cheap CPU plateaus dominate.
const (
	distHostWeight  = 1.5  // start/stop host per mismatched power state
	distPlaceWeight = 1.0  // migration or replica add/remove per VM
	distCPUWeight   = 0.02 // per 10% CPU-step gap, weighted by ideal size
	distFreqWeight  = 0.02 // DVFS transitions are near-free
)

// ConfigDistance measures how far a configuration is from the ideal one,
// following §IV-B: per-VM CPU differences weighted by the VM's relative
// size in the ideal configuration, plus placement and host power-state
// mismatch counts. It is used both to prune expansions in the Self-Aware
// search and to shape the search's cost-to-go.
func ConfigDistance(cfg, ideal cluster.Config) float64 {
	idealVMs := ideal.ActiveVMs()
	var totalIdeal float64
	for _, id := range idealVMs {
		p, _ := ideal.PlacementOf(id)
		totalIdeal += p.CPUPct
	}
	var dist float64
	seen := make(map[cluster.VMID]bool, len(idealVMs))
	for _, id := range idealVMs {
		ip, _ := ideal.PlacementOf(id)
		seen[id] = true
		p, active := cfg.PlacementOf(id)
		if !active {
			// Dormant here, active in the ideal: one replica addition.
			dist += distPlaceWeight
			continue
		}
		if p.Host != ip.Host {
			// One migration.
			dist += distPlaceWeight
		}
		// CPU gap in steps, weighted by relative ideal size (§IV-B's
		// "2 times more weight to VMi than VMj" rule).
		w := 1.0
		if totalIdeal > 0 {
			w = ip.CPUPct / totalIdeal * float64(len(idealVMs))
		}
		dist += distCPUWeight * w * math.Abs(p.CPUPct-ip.CPUPct) / 10
	}
	// Active here, dormant in the ideal: one replica removal.
	for _, id := range cfg.ActiveVMs() {
		if !seen[id] {
			dist += distPlaceWeight
		}
	}
	// Host power-state mismatches: one power-cycling action each. Without
	// this term, starting a host toward the ideal would look like zero
	// progress and the search could never justify it.
	// Mismatches are counted first and folded in once: adding the two
	// weights in map-iteration order would perturb the distance's last
	// bits from run to run, and the search compares distances exactly.
	union := make(map[string]bool)
	for _, h := range cfg.ActiveHosts() {
		union[h] = true
	}
	for _, h := range ideal.ActiveHosts() {
		union[h] = true
	}
	var powerMismatch, freqMismatch int
	for h := range union {
		if cfg.HostOn(h) != ideal.HostOn(h) {
			powerMismatch++
		}
		if cfg.HostFreq(h) != ideal.HostFreq(h) {
			freqMismatch++
		}
	}
	dist += float64(powerMismatch)*distHostWeight + float64(freqMismatch)*distFreqWeight
	return dist
}
