package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/sim"
)

// randomCandidate builds a random valid configuration for property tests.
func randomCandidate(cat *cluster.Catalog, rng *sim.RNG) (cluster.Config, bool) {
	hosts := cat.HostNames()
	cfg := cluster.NewConfig()
	nOn := 1 + rng.IntN(len(hosts))
	for _, i := range rng.Perm(len(hosts))[:nOn] {
		cfg.SetHostOn(hosts[i], true)
	}
	on := cfg.ActiveHosts()
	place := func(id cluster.VMID) bool {
		cpu := cat.MinCPUPct + float64(rng.IntN(3))*cat.CPUStepPct
		start := rng.IntN(len(on))
		for i := 0; i < len(on); i++ {
			h := on[(start+i)%len(on)]
			spec, _ := cat.Host(h)
			if cfg.AllocatedCPU(h)+cpu <= spec.UsableCPUPct && len(cfg.VMsOnHost(h)) < spec.MaxVMs {
				cfg.Place(id, h, cpu)
				return true
			}
		}
		return false
	}
	for _, k := range cat.Tiers() {
		ids := cat.TierVMs(k)
		if !place(ids[rng.IntN(len(ids))]) {
			return cluster.Config{}, false
		}
	}
	return cfg, cfg.IsCandidate(cat)
}

// Property: from any valid starting configuration and workload, the
// Self-Aware search returns a feasible plan ending in a candidate
// configuration whose Eq. 3 utility is at least the stay-put utility.
func TestSearchSoundnessProperty(t *testing.T) {
	e := newEnv(t, 4, 2)
	rng := sim.NewRNG(2024, 7)
	s := NewSearcher(e.eval, SearchOptions{SelfAware: true, MaxExpansions: 250})

	prop := func(rate8 uint8, cwMin uint8) bool {
		cfg, ok := randomCandidate(e.cat, rng)
		if !ok {
			return true
		}
		rate := 5 + float64(rate8%90)
		w := rates(e, rate)
		cw := time.Duration(4+int(cwMin%26)) * time.Minute

		e.eval.ResetCache()
		ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
		if err != nil {
			t.Logf("PerfPwr: %v", err)
			return false
		}
		res, err := s.Search(cfg, w, cw, ideal, ExpectedUtility{}, cluster.ActionSpace{})
		if err != nil {
			t.Logf("Search: %v", err)
			return false
		}
		final, _, err := cluster.ApplyAll(e.cat, cfg, res.Plan)
		if err != nil {
			t.Logf("plan infeasible: %v (%s)", err, cluster.PlanString(res.Plan))
			return false
		}
		if len(res.Plan) > 0 && !final.IsCandidate(e.cat) {
			t.Logf("plan ends in intermediate: %s", final)
			return false
		}
		st, err := e.eval.Steady(cfg, w)
		if err != nil {
			return false
		}
		stay := cw.Seconds() * st.NetRate()
		if res.Utility < stay-1e-9 {
			t.Logf("plan utility %v below stay-put %v (rate %v cw %v)", res.Utility, stay, rate, cw)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(25))}); err != nil {
		t.Error(err)
	}
}

// Property: the Perf-Pwr ideal is always a candidate configuration and its
// net rate dominates every random candidate's net rate up to a small
// heuristic tolerance — worst-fit packing plus gradient reduction is a
// heuristic (as in the paper), so placement-level Dom-0 coupling can leave
// a fraction of a percent on the table; the search's ε-margin absorbs it.
func TestIdealDominatesRandomCandidatesProperty(t *testing.T) {
	e := newEnv(t, 4, 2)
	rng := sim.NewRNG(99, 3)

	prop := func(rate8 uint8) bool {
		rate := 5 + float64(rate8%60) // within the range all placements can serve
		w := rates(e, rate)
		e.eval.ResetCache()
		ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
		if err != nil {
			return false
		}
		if !ideal.Config.IsCandidate(e.cat) {
			return false
		}
		for i := 0; i < 5; i++ {
			cfg, ok := randomCandidate(e.cat, rng)
			if !ok {
				continue
			}
			st, err := e.eval.Steady(cfg, w)
			if err != nil {
				return false
			}
			tol := 0.02*abs(ideal.Steady.NetRate()) + 1e-4
			if st.NetRate() > ideal.Steady.NetRate()+tol {
				t.Logf("random candidate beats ideal at rate %v: %v > %v (%s)",
					rate, st.NetRate(), ideal.Steady.NetRate(), cfg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(20))}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: ConfigDistance is zero iff configurations are equal (over the
// random candidate family) and symmetric in its placement/host terms'
// contribution to zero.
func TestConfigDistanceProperty(t *testing.T) {
	e := newEnv(t, 4, 2)
	rng := sim.NewRNG(7, 11)
	prop := func() bool {
		a, ok1 := randomCandidate(e.cat, rng)
		b, ok2 := randomCandidate(e.cat, rng)
		if !ok1 || !ok2 {
			return true
		}
		if ConfigDistance(a, a) != 0 || ConfigDistance(b, b) != 0 {
			return false
		}
		dab := ConfigDistance(a, b)
		if a.Equal(b) {
			return dab == 0
		}
		return dab > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(100))}); err != nil {
		t.Error(err)
	}
}
