// Package core implements the Mistral controller of the paper: the
// Perf-Pwr optimizer that computes the ideal power/performance
// configuration while ignoring transient costs (§IV-A), the Naive and
// Self-Aware A* searches over adaptation-action sequences that maximize the
// overall utility of Eq. 3 including transient and decision-making costs
// (§IV-B), and the per-level controller driving band tracking, stability-
// interval prediction, and search invocation (§II-C).
package core

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/obs"
	"github.com/mistralcloud/mistral/internal/power"
	"github.com/mistralcloud/mistral/internal/provenance"
	"github.com/mistralcloud/mistral/internal/utility"
)

// Steady is the evaluated steady-state behaviour of one configuration under
// one workload.
type Steady struct {
	// PerfRate is the performance utility accrual rate (Eq. 1 summed over
	// applications), dollars/second.
	PerfRate float64
	// PowerRate is the power utility accrual rate (Eq. 2), dollars/second,
	// always non-positive.
	PowerRate float64
	// Watts is the predicted system power draw.
	Watts float64
	// RTSec is the predicted mean response time per application.
	RTSec map[string]float64
	// Saturated reports whether any application exceeded capacity.
	Saturated bool
}

// NetRate is the combined accrual rate, dollars/second.
func (s Steady) NetRate() float64 { return s.PerfRate + s.PowerRate }

// cacheShards is the number of independently locked cache segments; a
// power of two so the shard index is a mask of the key hash. 16 shards
// keep lock contention negligible for the default worker counts (≤ 8).
const cacheShards = 16

// cacheMaxEntries bounds the cross-window memo cache (total across shards).
// At roughly 200 bytes per entry the bound caps the cache near 13 MiB; a
// replayed day of decisions stays well under it, so eviction only fires
// under pathological workload churn.
const cacheMaxEntries = 1 << 16

// steadyKey identifies one steady evaluation: the configuration's
// incremental 128-bit fingerprint plus the workload vector's fingerprint.
// Comparing and hashing the 24-byte struct replaces the Key()+ratesKey
// string build (two sorted string joins per lookup) the cache used before.
type steadyKey struct {
	fp  cluster.Fingerprint
	rfp RatesFP
}

// cacheEntry is one memoized (or in-flight) steady evaluation. The
// goroutine that inserts the entry owns the solve; done is closed when s
// and err are final, and concurrent lookups of the same key wait on it
// instead of duplicating the LQN solve (singleflight). gen is the cache
// generation of the entry's last hit (guarded by the shard mutex); the
// generational sweep in BeginWindow evicts cold entries by comparing it to
// the current generation.
type cacheEntry struct {
	done chan struct{}
	s    Steady
	err  error
	gen  uint64
}

// evalShard is one mutex-guarded segment of the memo cache.
type evalShard struct {
	mu      sync.Mutex
	entries map[steadyKey]*cacheEntry
}

// Evaluator bundles the predictor modules of Figure 2 — the Performance
// Manager (LQN model), the Power Consolidation Manager (power model), and
// the Cost Manager (cost tables) — behind the two operations the optimizer
// needs: steady-state evaluation of a configuration and transient
// evaluation of an action. Steady evaluations are memoized by
// (configuration fingerprint, workload fingerprint); the cache persists
// across control windows — configurations revisited by consecutive
// searches under an unchanged workload band cost two word compares instead
// of an LQN solve — with BeginWindow advancing a generation and sweeping
// cold entries once the cache exceeds its size bound. ResetCache remains
// the full drop (model or catalog change).
//
// Thread safety: Steady, Action, CacheStats, Evals, BeginWindow,
// ResetCache, and the
// read-only accessors are safe for concurrent use — the memo cache is
// sharded behind per-shard mutexes with singleflight dedup of identical
// in-flight solves, the underlying predictor modules are read-only
// (lqn.Model.Evaluate builds only call-local state), and the counters are
// atomic. SetObserver is not synchronized with the hot path: rebind
// observers before handing the evaluator to concurrent callers.
type Evaluator struct {
	cat   *cluster.Catalog
	model *lqn.Model
	util  *utility.Params
	costs *cost.Manager

	// appNames is the sorted application universe of the LQN model, fixed
	// at construction; it keys workload fingerprints without per-call
	// sorting.
	appNames []string
	// utilNames is the sorted application universe of the utility params:
	// the fold order PerfRateAll uses. Cached here so the hot paths can sum
	// Eq. 1 in the identical order without the per-call sort.
	utilNames []string

	shards    [cacheShards]evalShard
	gen       atomic.Uint64
	cacheHits atomic.Int64
	evals     atomic.Int64
	dedups    atomic.Int64

	// actScratch pools the per-call response-time delta maps of Action so
	// the search's per-child transient evaluation allocates nothing.
	actScratch sync.Pool

	// Observability sinks, resolved at construction (see obs.SetDefault)
	// and rebindable with SetObserver. Cache statistics are fed into the
	// registry on each ResetCache rather than per lookup, so the memoized
	// hot path stays untouched.
	log     *slog.Logger
	cHits   *obs.Counter
	cMisses *obs.Counter
	cSolves *obs.Counter
	cDedup  *obs.Counter
	gSize   *obs.Gauge

	// Sinks for the Perf-Pwr sweep (the sweep is a free function over the
	// evaluator, so its instrumentation lives here).
	gSweepWorkers *obs.Gauge
	cSweepArms    *obs.Counter
}

// NewEvaluator builds an evaluator.
func NewEvaluator(cat *cluster.Catalog, model *lqn.Model, util *utility.Params, costs *cost.Manager) (*Evaluator, error) {
	if cat == nil || model == nil || util == nil || costs == nil {
		return nil, fmt.Errorf("core: evaluator needs catalog, model, utility params, and cost manager")
	}
	if err := util.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	names := make([]string, 0, len(model.Apps()))
	for name := range model.Apps() {
		names = append(names, name)
	}
	sort.Strings(names)
	utilNames := make([]string, 0, len(util.Apps))
	for name := range util.Apps {
		utilNames = append(utilNames, name)
	}
	sort.Strings(utilNames)
	e := &Evaluator{
		cat:       cat,
		model:     model,
		util:      util,
		costs:     costs,
		appNames:  names,
		utilNames: utilNames,
	}
	e.actScratch.New = func() any { return make(map[string]float64, len(utilNames)) }
	for i := range e.shards {
		e.shards[i].entries = make(map[steadyKey]*cacheEntry)
	}
	e.SetObserver(obs.Default())
	return e, nil
}

// SetObserver rebinds the evaluator's observability sinks (construction
// resolves the process default); pass nil to disable. Not synchronized
// with evaluation: call it before any concurrent use.
func (e *Evaluator) SetObserver(o *obs.Observer) {
	e.log = o.Logger()
	e.cHits = o.Counter("eval_cache_hits_total")
	e.cMisses = o.Counter("eval_cache_misses_total")
	e.cSolves = o.Counter("lqn_solves_total")
	e.cDedup = o.Counter("eval_inflight_dedup_total")
	e.gSize = o.Gauge("eval_cache_entries")
	e.gSweepWorkers = o.Gauge("perfpwr_workers")
	e.cSweepArms = o.Counter("perfpwr_sweep_arms_total")
}

// CacheStats is the evaluator's memoization activity since the last
// ResetCache. Misses equal the number of distinct steady evaluations
// performed (each one is an LQN solve); Entries is the live cache size.
// Dedups counts lookups that joined an identical in-flight solve instead
// of starting their own; when the joined solve succeeds they also count
// as Hits (the solve itself is charged to its initiating miss).
type CacheStats struct {
	Hits, Misses, Entries, Dedups int
}

// HitRate is the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// CacheStats reports cache activity since the last ResetCache.
func (e *Evaluator) CacheStats() CacheStats {
	st := CacheStats{
		Hits:   int(e.cacheHits.Load()),
		Misses: int(e.evals.Load()),
		Dedups: int(e.dedups.Load()),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return st
}

// Catalog returns the catalog.
func (e *Evaluator) Catalog() *cluster.Catalog { return e.cat }

// Utility returns the utility parameters.
func (e *Evaluator) Utility() *utility.Params { return e.util }

// Costs returns the cost manager.
func (e *Evaluator) Costs() *cost.Manager { return e.costs }

// ResetCache drops every memoized steady evaluation. Use it when the
// predictor modules themselves change meaning (model swap, catalog edit,
// fault injection mutating the world); per-decision callers should use
// BeginWindow, which keeps the cache warm across windows. Safe to call
// concurrently with Steady: the cache is workload-keyed, so resetting
// mid-flight costs at most redundant solves, never correctness (a
// concurrent leader finishing after the reset publishes into a shard map
// that was already swapped out, which only forfeits its memoization).
func (e *Evaluator) ResetCache() {
	var entries int
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		entries += len(sh.entries)
		sh.entries = make(map[steadyKey]*cacheEntry)
		sh.mu.Unlock()
	}
	e.flushStats(entries)
}

// BeginWindow marks a control-window boundary: the cache generation
// advances, the window's cache statistics are flushed into the metrics
// registry (keeping the per-lookup path free of instrumentation), and —
// only once the cache exceeds its size bound — entries not touched since
// the previous window are swept. Evaluations are pure functions of their
// key, so cross-window reuse changes which solves run, never their
// results; the sweep is likewise invisible to decisions.
func (e *Evaluator) BeginWindow() {
	gen := e.gen.Add(1)
	var entries int
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		if len(sh.entries) > cacheMaxEntries/cacheShards {
			for k, ent := range sh.entries {
				// gen was just advanced: ent.gen == gen-1 means the entry
				// was hit in the window that just ended. Keep those, sweep
				// older; if one overfull window produced them all, drop the
				// shard outright rather than grow without bound.
				if ent.gen+1 < gen {
					delete(sh.entries, k)
				}
			}
			if len(sh.entries) > cacheMaxEntries/cacheShards {
				sh.entries = make(map[steadyKey]*cacheEntry)
			}
		}
		entries += len(sh.entries)
		sh.mu.Unlock()
	}
	e.flushStats(entries)
}

// flushStats publishes and zeroes the window's cache counters.
func (e *Evaluator) flushStats(entries int) {
	evals := e.evals.Swap(0)
	e.cHits.Add(e.cacheHits.Swap(0))
	e.cMisses.Add(evals)
	e.cSolves.Add(evals)
	e.cDedup.Add(e.dedups.Swap(0))
	e.gSize.Set(float64(entries))
}

// Evals reports how many distinct steady evaluations were performed since
// the last reset (a proxy for model-solving work).
func (e *Evaluator) Evals() int { return int(e.evals.Load()) }

// CacheEntryState is one memoized steady evaluation in serializable form.
// Only completed, successful solves are captured (failed solves are never
// cached; between control windows no solve is in flight).
type CacheEntryState struct {
	FP  [2]uint64 `json:"fp"`
	RFP uint64    `json:"rfp"`
	Gen uint64    `json:"gen"`

	PerfRate  float64            `json:"perf_rate"`
	PowerRate float64            `json:"power_rate"`
	Watts     float64            `json:"watts"`
	RTSec     map[string]float64 `json:"rt_sec,omitempty"`
	Saturated bool               `json:"saturated,omitempty"`
}

// CacheSnapshot is the evaluator's complete memoization state: the cache
// generation, the residual (un-flushed) activity counters, and every live
// entry. Restoring it into a fresh evaluator reproduces which future solves
// hit versus miss — and therefore the cache-hit counter stream the SLO
// engine watches — exactly as if the original process had kept running.
type CacheSnapshot struct {
	Gen     uint64            `json:"gen"`
	Hits    int64             `json:"hits"`
	Evals   int64             `json:"evals"`
	Dedups  int64             `json:"dedups"`
	Entries []CacheEntryState `json:"entries,omitempty"`
}

// SnapshotCache captures the memo cache. Not synchronized with in-flight
// solves: call it only at a quiescent point (between control windows).
func (e *Evaluator) SnapshotCache() CacheSnapshot {
	snap := CacheSnapshot{
		Gen:    e.gen.Load(),
		Hits:   e.cacheHits.Load(),
		Evals:  e.evals.Load(),
		Dedups: e.dedups.Load(),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k, ent := range sh.entries {
			select {
			case <-ent.done:
			default:
				continue // in-flight: caller violated quiescence; skip
			}
			if ent.err != nil {
				continue
			}
			var rt map[string]float64
			if len(ent.s.RTSec) > 0 {
				rt = make(map[string]float64, len(ent.s.RTSec))
				for app, v := range ent.s.RTSec {
					rt[app] = v
				}
			}
			snap.Entries = append(snap.Entries, CacheEntryState{
				FP:        [2]uint64(k.fp),
				RFP:       uint64(k.rfp),
				Gen:       ent.gen,
				PerfRate:  ent.s.PerfRate,
				PowerRate: ent.s.PowerRate,
				Watts:     ent.s.Watts,
				RTSec:     rt,
				Saturated: ent.s.Saturated,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(snap.Entries, func(i, j int) bool {
		a, b := &snap.Entries[i], &snap.Entries[j]
		if a.FP != b.FP {
			return a.FP[0] < b.FP[0] || (a.FP[0] == b.FP[0] && a.FP[1] < b.FP[1])
		}
		return a.RFP < b.RFP
	})
	return snap
}

// RestoreCache replaces the memo cache with a captured snapshot. Entries
// are installed as completed solves (closed done channels), so lookups hit
// them immediately.
func (e *Evaluator) RestoreCache(snap CacheSnapshot) {
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[steadyKey]*cacheEntry)
		sh.mu.Unlock()
	}
	e.gen.Store(snap.Gen)
	e.cacheHits.Store(snap.Hits)
	e.evals.Store(snap.Evals)
	e.dedups.Store(snap.Dedups)
	for _, es := range snap.Entries {
		key := steadyKey{fp: cluster.Fingerprint(es.FP), rfp: RatesFP(es.RFP)}
		ent := &cacheEntry{done: make(chan struct{}), gen: es.Gen}
		ent.s = Steady{
			PerfRate:  es.PerfRate,
			PowerRate: es.PowerRate,
			Watts:     es.Watts,
			Saturated: es.Saturated,
		}
		if len(es.RTSec) > 0 {
			ent.s.RTSec = make(map[string]float64, len(es.RTSec))
			for app, v := range es.RTSec {
				ent.s.RTSec[app] = v
			}
		}
		close(ent.done)
		sh := &e.shards[shardOf(key)]
		sh.mu.Lock()
		sh.entries[key] = ent
		sh.mu.Unlock()
	}
}

// RatesFP is a 64-bit fingerprint of a workload vector, the rate-band half
// of the steady-cache key. Callers on the search hot path compute it once
// per decision with RatesFingerprint and thread it through SteadyFP; the
// per-lookup alternative — rebuilding a sorted key string for every child —
// was measured as a top allocation source in the expansion loop.
type RatesFP uint64

// RatesFingerprint fingerprints a workload vector (FNV-1a over the fixed
// application universe in sorted order; apps absent from rates fingerprint
// as zero, matching how the model treats them). Rates are bucketed at 0.01
// req/s, the same band the old string key rounded to.
func (e *Evaluator) RatesFingerprint(rates map[string]float64) RatesFP {
	h := uint64(14695981039346656037)
	fold := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for _, name := range e.appNames {
		for i := 0; i < len(name); i++ {
			fold(name[i])
		}
		fold(0xff)
		u := uint64(int64(rates[name]*100 + 0.5))
		for i := 0; i < 8; i++ {
			fold(byte(u >> (8 * i)))
		}
	}
	return RatesFP(h)
}

// shardOf maps a cache key to its shard index. Both halves of the key are
// already well-mixed hashes, so folding their words is enough.
func shardOf(k steadyKey) uint32 {
	return uint32(k.fp[0]^k.fp[1]^uint64(k.rfp)) & (cacheShards - 1)
}

// Steady evaluates a configuration's steady-state utility rates under the
// given per-application request rates. Safe for concurrent use: identical
// concurrent lookups dedup onto a single LQN solve (singleflight); failed
// solves are not cached, so every later lookup of that key retries.
func (e *Evaluator) Steady(cfg cluster.Config, rates map[string]float64) (Steady, error) {
	return e.SteadyFP(cfg, rates, e.RatesFingerprint(rates))
}

// SteadyFP is Steady for callers that evaluate many configurations under
// one workload vector: rfp is RatesFingerprint(rates), computed once per
// decision and threaded through, so each lookup costs a 24-byte key build
// and a map probe.
func (e *Evaluator) SteadyFP(cfg cluster.Config, rates map[string]float64, rfp RatesFP) (Steady, error) {
	key := steadyKey{fp: cfg.Fingerprint(), rfp: rfp}
	sh := &e.shards[shardOf(key)]
	sh.mu.Lock()
	if ent, ok := sh.entries[key]; ok {
		ent.gen = e.gen.Load()
		sh.mu.Unlock()
		select {
		case <-ent.done:
		default:
			// The solve is in flight on another goroutine; wait for it
			// instead of duplicating the work.
			e.dedups.Add(1)
			<-ent.done
		}
		if ent.err == nil {
			e.cacheHits.Add(1)
		}
		return ent.s, ent.err
	}
	ent := &cacheEntry{done: make(chan struct{}), gen: e.gen.Load()}
	sh.entries[key] = ent
	sh.mu.Unlock()

	ent.s, ent.err = e.solve(cfg, rates)
	if ent.err != nil {
		// Drop the failed entry (if a ResetCache has not replaced the map
		// already) so later lookups retry instead of caching the error.
		sh.mu.Lock()
		if sh.entries[key] == ent {
			delete(sh.entries, key)
		}
		sh.mu.Unlock()
	} else {
		e.evals.Add(1)
	}
	close(ent.done)
	return ent.s, ent.err
}

// solve performs one uncached steady evaluation: the LQN solve plus power
// and utility-rate derivation.
func (e *Evaluator) solve(cfg cluster.Config, rates map[string]float64) (Steady, error) {
	res, err := e.model.Evaluate(cfg, rates, nil)
	if err != nil {
		return Steady{}, fmt.Errorf("core: steady evaluation: %w", err)
	}
	s := Steady{RTSec: make(map[string]float64, len(res.Apps))}
	hostUtil := make(map[string]float64, len(res.Hosts))
	for h, hr := range res.Hosts {
		hostUtil[h] = hr.CPUUtil
	}
	s.Watts = power.SystemWatts(e.cat, cfg, hostUtil)
	s.PowerRate = e.util.PowerRate(s.Watts)
	for name, ar := range res.Apps {
		s.RTSec[name] = ar.MeanRTSec
		if ar.Saturated {
			s.Saturated = true
		}
	}
	s.PerfRate = e.perfRateFold(rates, s.RTSec)
	return s, nil
}

// perfRateFold sums Eq. 1 across the utility application universe in the
// cached sorted order: the identical floating-point fold PerfRateAll
// performs, without its per-call name sort and allocation.
func (e *Evaluator) perfRateFold(rates, rtSec map[string]float64) float64 {
	var sum float64
	for _, name := range e.utilNames {
		sum += e.util.PerfRate(name, rates[name], rtSec[name])
	}
	return sum
}

// ActionCost is the transient evaluation of one action executed from a
// given configuration: its duration and the utility accrual rate while it
// runs (Eq. 1 and 2 applied to the degraded response times and elevated
// power of §III-C).
type ActionCost struct {
	Duration time.Duration
	// Rate is the utility accrual rate during the action, dollars/second.
	Rate float64
}

// Action evaluates the transient cost of executing a from cfg, whose steady
// state is base (pass the memoized Steady of cfg). Safe for concurrent use:
// the cost tables and utility parameters are read-only, and the
// response-time scratch map is pooled per call. The Eq. 1 fold visits the
// same applications with the same values in the same order as building the
// degraded rt map and summing it would, so the rate is bit-identical to
// the allocating formulation it replaced.
func (e *Evaluator) Action(cfg cluster.Config, base Steady, a cluster.Action, rates map[string]float64) ActionCost {
	deltaRT := e.actScratch.Get().(map[string]float64)
	dur, deltaWatts := e.costs.PredictInto(cfg, a, rates, deltaRT)
	var perf float64
	for _, name := range e.utilNames {
		// The degraded rt map had keys only for applications the model
		// evaluated: others read as zero even when a delta exists.
		rt, ok := base.RTSec[name]
		if ok {
			rt += deltaRT[name]
		}
		perf += e.util.PerfRate(name, rates[name], rt)
	}
	rate := perf + e.util.PowerRate(base.Watts+deltaWatts)
	e.actScratch.Put(deltaRT)
	return ActionCost{Duration: dur, Rate: rate}
}

// Model exposes the LQN model (used by scenario assembly).
func (e *Evaluator) Model() *lqn.Model { return e.model }

// PlanLedger replays a plan from cfg and decomposes its Eq. 3 utility for
// the flight recorder: per-action transient costs in execution order, then
// the final configuration's steady rates over the window time left. The
// replay performs the same operations in the same order as the search's
// vertex accounting (Apply, Action, accrued += duration·rate, then
// remaining·NetRate), so for the chosen plan the ledger's Utility
// reproduces SearchResult.Utility bit-for-bit — the provenance --check
// tolerance of 1e-9 is slack, not rounding headroom. A replay failure is
// recorded in Error rather than returned: a ledger that cannot be rebuilt
// should not fail the decision it documents.
func (e *Evaluator) PlanLedger(cfg cluster.Config, rates map[string]float64, cw time.Duration, plan []cluster.Action) provenance.PlanLedger {
	var l provenance.PlanLedger
	cur := cfg
	var dur time.Duration
	var accrued float64
	for i, a := range plan {
		st, err := e.Steady(cur, rates)
		if err != nil {
			l.Error = fmt.Sprintf("action %d (%s): steady: %v", i, a, err)
			return l
		}
		next, filled, err := cluster.Apply(e.cat, cur, a)
		if err != nil {
			l.Error = fmt.Sprintf("action %d (%s): apply: %v", i, a, err)
			return l
		}
		ac := e.Action(cur, st, filled, rates)
		l.Actions = append(l.Actions, provenance.ActionProv{
			Action:            filled.String(),
			DurationSec:       ac.Duration.Seconds(),
			RateDollarsPerSec: ac.Rate,
			CostDollars:       ac.Duration.Seconds() * ac.Rate,
		})
		accrued += ac.Duration.Seconds() * ac.Rate
		dur += ac.Duration
		cur = next
	}
	st, err := e.Steady(cur, rates)
	if err != nil {
		l.Error = fmt.Sprintf("final steady: %v", err)
		return l
	}
	rem := (cw - dur).Seconds()
	if rem < 0 {
		rem = 0
	}
	l.TransientDollars = accrued
	l.PlanDurationSec = dur.Seconds()
	l.SteadyPerfRate = st.PerfRate
	l.SteadyPwrRate = st.PowerRate
	l.SteadySec = rem
	l.SteadyDollars = rem * st.NetRate()
	l.Utility = accrued + l.SteadyDollars
	return l
}
