package core

import (
	"testing"

	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestPerfPwrSubsetRepacksOnlyScopedHosts(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 40)
	subset := e.cat.HostNames()[:2]
	inSubset := map[string]bool{subset[0]: true, subset[1]: true}

	ideal, err := PerfPwrSubset(e.eval, e.cfg, w, subset, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.Config.IsCandidate(e.cat) {
		t.Fatalf("subset ideal invalid: %v", ideal.Config.Validate(e.cat))
	}
	// VMs outside the subset keep their exact placements; VMs inside may
	// move but only within the subset.
	for _, id := range e.cfg.ActiveVMs() {
		p0, _ := e.cfg.PlacementOf(id)
		p1, ok := ideal.Config.PlacementOf(id)
		if !ok {
			t.Fatalf("VM %s vanished from subset ideal", id)
		}
		if !inSubset[p0.Host] {
			if p1 != p0 {
				t.Errorf("out-of-scope VM %s changed: %+v -> %+v", id, p0, p1)
			}
			continue
		}
		if !inSubset[p1.Host] {
			t.Errorf("in-scope VM %s escaped the subset to %s", id, p1.Host)
		}
	}
	// Host power states are preserved: subset controllers cannot cycle
	// hosts.
	for _, h := range e.cat.HostNames() {
		if ideal.Config.HostOn(h) != e.cfg.HostOn(h) {
			t.Errorf("host %s power state changed by subset ideal", h)
		}
	}
	// No replication changes.
	if got, want := len(ideal.Config.ActiveVMs()), len(e.cfg.ActiveVMs()); got != want {
		t.Errorf("replication changed: %d VMs, want %d", got, want)
	}
}

func TestPerfPwrSubsetEmptyScope(t *testing.T) {
	e := newEnv(t, 4, 1)
	w := rates(e, 30)
	// A subset containing only powered-off hosts: nothing to manage, the
	// ideal is the current configuration.
	var offHosts []string
	for _, h := range e.cat.HostNames() {
		if !e.cfg.HostOn(h) {
			offHosts = append(offHosts, h)
		}
	}
	if len(offHosts) == 0 {
		t.Skip("all hosts on in this environment")
	}
	ideal, err := PerfPwrSubset(e.eval, e.cfg, w, offHosts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.Config.Equal(e.cfg) {
		t.Error("empty-scope ideal differs from the current configuration")
	}
}

func TestVMZonePinsOf(t *testing.T) {
	mk := func(name, zone string) cluster.HostSpec {
		h := cluster.DefaultHostSpec(name)
		h.Zone = zone
		return h
	}
	cat, err := cluster.NewCatalog(cluster.CatalogConfig{
		Hosts: []cluster.HostSpec{mk("e0", "east"), mk("w0", "west")},
		VMs: []cluster.VMSpec{
			{ID: "a-web-0", App: "a", Tier: "web", MemoryMB: 200},
			{ID: "a-db-0", App: "a", Tier: "db", MemoryMB: 200},
			{ID: "a-db-1", App: "a", Tier: "db", Replica: 1, MemoryMB: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("e0", true)
	cfg.SetHostOn("w0", true)
	cfg.Place("a-web-0", "e0", 40)
	cfg.Place("a-db-0", "w0", 40)

	pins := VMZonePinsOf(cat, cfg)
	if pins["a-web-0"] != "east" || pins["a-db-0"] != "west" {
		t.Errorf("pins = %v", pins)
	}
	if _, pinned := pins["a-db-1"]; pinned {
		t.Error("dormant replica pinned")
	}
}
