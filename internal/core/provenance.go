package core

import (
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/provenance"
)

// Bounds on the per-search flight-recorder digest. A 2h replay invokes the
// search hundreds of times; unbounded capture of a 2500-expansion search
// would dwarf the decisions it explains. The caps keep a record's digest a
// few tens of KiB while retaining the expansion prefix (where pruning and
// termination decisions are made) and counting what fell past the cap.
const (
	provMaxVertices = 256
	provMaxEvents   = 128
	provMaxRejected = 3
)

// digestBuilder accumulates one search's provenance.SearchDigest under the
// caps above. A nil builder is a valid disabled builder (the search
// constructs one only when SearchOptions.Provenance is set), so the hot
// path pays a nil check per expansion and nothing else.
type digestBuilder struct {
	d provenance.SearchDigest
}

func newDigestBuilder(rootDist float64) *digestBuilder {
	b := &digestBuilder{}
	b.d.RootDistance = rootDist
	return b
}

// vertex records one expanded vertex in pop order (bounded).
func (b *digestBuilder) vertex(seq, depth int, f, g, dist float64, frontier int) {
	if b == nil {
		return
	}
	if len(b.d.Vertices) >= provMaxVertices {
		b.d.DroppedVertices++
		return
	}
	b.d.Vertices = append(b.d.Vertices, provenance.VertexProv{
		Seq: seq, Depth: depth, F: f, G: g, H: f - g, Distance: dist, Frontier: frontier,
	})
}

// event records one pruning/deadline incident (bounded).
func (b *digestBuilder) event(expansion int, kind, reason string, dropped int, elapsed time.Duration) {
	if b == nil {
		return
	}
	if len(b.d.Events) >= provMaxEvents {
		b.d.DroppedEvents++
		return
	}
	b.d.Events = append(b.d.Events, provenance.EventProv{
		Expansion: expansion, Kind: kind, Reason: reason, Dropped: dropped, ElapsedSec: elapsed.Seconds(),
	})
}

// finalize stamps the termination reason and the completed SearchResult's
// statistics into the digest and returns it. chosen is the Eq. 3 ledger of
// the winning plan; rejected the harvested frontier alternatives.
func (b *digestBuilder) finalize(term string, res *SearchResult, chosen provenance.PlanLedger, rejected []provenance.Alternative) *provenance.SearchDigest {
	if b == nil {
		return nil
	}
	b.d.Termination = term
	b.d.Utility = res.Utility
	b.d.SearchTimeSec = res.SearchTime.Seconds()
	b.d.SearchCostDollars = res.SearchCost
	b.d.Expanded = res.Expanded
	b.d.Generated = res.Generated
	b.d.PrunedChildren = res.PrunedChildren
	b.d.PeakFrontier = res.PeakFrontier
	b.d.Truncated = res.Truncated
	b.d.Chosen = chosen
	b.d.Rejected = rejected
	return &b.d
}

// harvestRejected digests the best alternatives still open when the search
// committed: the plans it would have explored next. chosen is excluded,
// stale duplicates (superseded by a better path to the same configuration)
// are skipped, and the survivors are ordered best-first with a
// deterministic tie-break (priority desc, depth asc, plan string asc) so
// records are byte-identical at every Workers setting — the heap's
// internal slice order for equal priorities is not guaranteed stable
// across runs.
func harvestRejected(e *Evaluator, open *vertexHeap, bestByKey map[cluster.Fingerprint]float64, chosen *vertex, root, ideal cluster.Config, rates map[string]float64, cw time.Duration) []provenance.Alternative {
	type cand struct {
		v       *vertex
		actions []cluster.Action
		plan    string
	}
	var cands []cand
	for _, v := range *open {
		if v == chosen {
			continue
		}
		if !v.finished && v.utility < bestByKey[v.fp]-1e-12 {
			continue // stale duplicate; a better path to this config exists
		}
		actions := planOf(v)
		cands = append(cands, cand{v: v, actions: actions, plan: cluster.PlanString(actions)})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.v.utility != b.v.utility {
			return a.v.utility > b.v.utility
		}
		if a.v.depth != b.v.depth {
			return a.v.depth < b.v.depth
		}
		return a.plan < b.plan
	})
	if len(cands) > provMaxRejected {
		cands = cands[:provMaxRejected]
	}
	out := make([]provenance.Alternative, 0, len(cands))
	for _, c := range cands {
		out = append(out, provenance.Alternative{
			Depth:    c.v.depth,
			F:        c.v.utility,
			G:        c.v.accrued,
			H:        c.v.utility - c.v.accrued,
			Distance: ConfigDistance(c.v.cfg, ideal),
			Complete: c.v.finished,
			Ledger:   e.PlanLedger(root, rates, cw, c.actions),
		})
	}
	return out
}
