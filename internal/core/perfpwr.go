package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/par"
)

// Ideal is the output of the Perf-Pwr optimizer: the configuration that
// optimally trades performance against power for the current workload when
// transient adaptation costs are ignored, and its utility rates. Its net
// rate is the admissible cost-to-go heuristic of the A* search.
type Ideal struct {
	Config cluster.Config
	Steady Steady
}

// PerfPwrScope selects how much freedom the Perf-Pwr optimizer has.
type PerfPwrScope int

// Scopes.
const (
	// ScopeFull repacks every VM (including dormant replicas) onto as few
	// hosts as possible (the 2nd-level controller's view).
	ScopeFull PerfPwrScope = iota + 1
	// ScopeTune keeps placements and replication fixed and only retunes
	// CPU allocations (the cheapest possible view).
	ScopeTune
	// ScopeSubset repacks only the VMs currently placed within a host
	// subset, holding the rest of the system fixed (the 1st-level
	// controllers' view: CPU tuning plus migrations inside their group).
	ScopeSubset
)

// PerfPwrOptions tunes the optimizer.
type PerfPwrOptions struct {
	// Scope defaults to ScopeFull.
	Scope PerfPwrScope
	// Hosts restricts the optimizer to a subset of hosts (hierarchy
	// levels); empty means all hosts.
	Hosts []string
	// VMZonePins constrains individual VMs to a data-center zone.
	// Controllers that cannot migrate across the WAN pin every currently
	// active VM to its present zone — dormant replicas stay free, exactly
	// mirroring what such a controller can actually reach (same-zone
	// migrations plus replica additions anywhere).
	VMZonePins map[cluster.VMID]string
	// AppHostPools confines each application's VMs to a fixed host pool
	// (the Perf-Cost baseline's "2 hosts per application").
	AppHostPools map[string][]string
	// Workers bounds the goroutines evaluating sweep arms (host-count ×
	// affinity-variant combinations) concurrently (default
	// min(GOMAXPROCS, 8); 1 reproduces the serial path). The winner is
	// selected by the serial sweep's deterministic order regardless.
	Workers int
}

// PerfPwr implements the optimizer of §IV-A. For each candidate number of
// active hosts, from all available down to the minimum able to hold the
// required VMs at minimum capacity, it starts from maximum CPU allocations
// for every replica and repeatedly (a) reduces an individual VM's capacity
// by one step or (b) removes a replica, choosing the candidate with the
// highest utilization-per-utility gradient ∇ρ, until the VMs bin-pack onto
// the hosts (worst-fit). The packed configuration with the highest overall
// utility rate across host counts is the ideal configuration c*.
func PerfPwr(e *Evaluator, rates map[string]float64, opts PerfPwrOptions) (Ideal, error) {
	if opts.Scope == 0 {
		opts.Scope = ScopeFull
	}
	hosts := opts.Hosts
	if len(hosts) == 0 {
		hosts = e.cat.HostNames()
	}
	switch opts.Scope {
	case ScopeTune:
		return Ideal{}, fmt.Errorf("core: ScopeTune requires a base configuration; use PerfPwrTune")
	case ScopeSubset:
		return Ideal{}, fmt.Errorf("core: ScopeSubset requires a base configuration; use PerfPwrSubset")
	case ScopeFull:
	default:
		return Ideal{}, fmt.Errorf("core: unknown Perf-Pwr scope %d", int(opts.Scope))
	}

	scope := packScope{
		managed:             e.cat.VMIDs(),
		fixed:               cluster.NewConfig(),
		allowReplicaRemoval: true,
		zonePins:            opts.VMZonePins,
		appPools:            opts.AppHostPools,
	}
	minHosts := minHostsNeeded(e.cat, hosts)
	return sweepHostCounts(e, rates, scope, hosts, minHosts, opts.Workers)
}

// VMZonePinsOf pins every active VM of a configuration to its current
// zone: the reachability constraint of controllers without WAN migration.
func VMZonePinsOf(cat *cluster.Catalog, cfg cluster.Config) map[cluster.VMID]string {
	pins := make(map[cluster.VMID]string)
	for _, id := range cfg.ActiveVMs() {
		p, _ := cfg.PlacementOf(id)
		pins[id] = cat.ZoneOf(p.Host)
	}
	return pins
}

// PerfPwrSubset is the 1st-level controllers' ideal: repack only the VMs
// currently placed within the host subset (no replication changes), holding
// everything outside the subset fixed. workers bounds the sweep's
// concurrency as in PerfPwrOptions.Workers (0 = default, 1 = serial).
func PerfPwrSubset(e *Evaluator, base cluster.Config, rates map[string]float64, hosts []string, workers int) (Ideal, error) {
	if len(hosts) == 0 {
		hosts = e.cat.HostNames()
	}
	// A 1st-level controller cannot cycle host power: only hosts already on
	// are packing targets, and they stay on (and drawing power) even when
	// the packing leaves them empty.
	onHosts := make([]string, 0, len(hosts))
	inScope := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if base.HostOn(h) {
			onHosts = append(onHosts, h)
			inScope[h] = true
		}
	}
	hosts = onHosts
	fixed := base.Clone()
	var managed []cluster.VMID
	for _, id := range base.ActiveVMs() {
		p, _ := base.PlacementOf(id)
		if inScope[p.Host] {
			managed = append(managed, id)
			fixed.Unplace(id)
		}
	}
	if len(managed) == 0 || len(hosts) == 0 {
		st, err := e.Steady(base, rates)
		if err != nil {
			return Ideal{}, err
		}
		return Ideal{Config: base.Clone(), Steady: st}, nil
	}
	scope := packScope{managed: managed, fixed: fixed}
	return sweepHostCounts(e, rates, scope, hosts, 1, workers)
}

// PerfPwrMeetingTargets is the modified Perf-Pwr optimizer behind the
// Pwr-Cost baseline (§V-C): identical to PerfPwr except that no reduction
// may push any application's predicted response time past its target —
// capacities stay "large enough that the target response time can be met".
// It returns an error when even maximum capacities cannot meet the targets
// on any host count.
func PerfPwrMeetingTargets(e *Evaluator, rates map[string]float64) (Ideal, error) {
	targets := make(map[string]float64, len(e.util.Apps))
	for name, a := range e.util.Apps {
		targets[name] = a.TargetRT.Seconds()
	}
	scope := packScope{
		managed:             e.cat.VMIDs(),
		fixed:               cluster.NewConfig(),
		allowReplicaRemoval: true,
		rtTargets:           targets,
	}
	hosts := e.cat.HostNames()
	ideal, err := sweepHostCounts(e, rates, scope, hosts, minHostsNeeded(e.cat, hosts), 0)
	if err != nil {
		return Ideal{}, fmt.Errorf("core: no configuration meets all response-time targets: %w", err)
	}
	return ideal, nil
}

// EvaluatePlan computes Eq. 3 for executing a plan from cfg: transient
// accrual during each action plus steady accrual of the final configuration
// for the rest of the control window. An empty plan yields the stay-put
// utility.
func EvaluatePlan(e *Evaluator, cfg cluster.Config, plan []cluster.Action, rates map[string]float64, cw time.Duration) (float64, error) {
	var total float64
	var spent time.Duration
	cur := cfg
	for i, a := range plan {
		st, err := e.Steady(cur, rates)
		if err != nil {
			return 0, err
		}
		next, filled, err := cluster.Apply(e.cat, cur, a)
		if err != nil {
			return 0, fmt.Errorf("core: evaluating plan step %d: %w", i, err)
		}
		ac := e.Action(cur, st, filled, rates)
		charged := ac.Duration
		if left := cw - spent; charged > left {
			charged = left
		}
		if charged > 0 {
			total += charged.Seconds() * ac.Rate
		}
		spent += ac.Duration
		cur = next
	}
	if remaining := cw - spent; remaining > 0 {
		st, err := e.Steady(cur, rates)
		if err != nil {
			return 0, err
		}
		total += remaining.Seconds() * st.NetRate()
	}
	return total, nil
}

// sweepHostCounts runs the reduction/packing loop for every candidate host
// count and keeps the best packed configuration. The arms — one per
// (host count, affinity variant) pair — are independent full reduction
// loops, so they evaluate concurrently on the worker pool; the fold over
// their indexed results replays the serial sweep's order exactly, so the
// winner (selected by strict improvement) and any returned error are
// identical at every workers setting.
func sweepHostCounts(e *Evaluator, rates map[string]float64, scope packScope, hosts []string, minHosts, workers int) (Ideal, error) {
	multiZone := len(e.cat.Zones()) > 1
	type arm struct {
		n     int
		scope packScope
	}
	var arms []arm
	for n := len(hosts); n >= minHosts; n-- {
		arms = append(arms, arm{n, scope})
		if multiZone {
			alt := scope
			alt.noAffinity = true
			arms = append(arms, arm{n, alt})
		}
	}
	workers = par.Workers(workers)
	e.gSweepWorkers.Set(float64(workers))
	e.cSweepArms.Add(int64(len(arms)))

	type armResult struct {
		ideal Ideal
		ok    bool
		err   error
	}
	results := make([]armResult, len(arms))
	par.For(len(arms), workers, func(i int) {
		a := arms[i]
		cfg, ok, err := packWithReduction(e, rates, a.scope, hosts[:a.n])
		if err != nil || !ok {
			results[i] = armResult{err: err}
			return
		}
		cfg, steady, err := polishAllocations(e, cfg, rates, a.scope)
		if err != nil {
			results[i] = armResult{err: err}
			return
		}
		results[i] = armResult{ideal: Ideal{Config: cfg, Steady: steady}, ok: true}
	})

	var best *Ideal
	dbg := e.log.Enabled(context.Background(), slog.LevelDebug)
	for i, r := range results {
		if r.err != nil {
			return Ideal{}, r.err
		}
		if !r.ok {
			continue
		}
		if dbg {
			e.log.Debug("perfpwr sweep",
				"hosts", arms[i].n,
				"no_affinity", arms[i].scope.noAffinity,
				"net_rate", r.ideal.Steady.NetRate(),
				"config", fmt.Sprint(r.ideal.Config))
		}
		if best == nil || r.ideal.Steady.NetRate() > best.Steady.NetRate() {
			b := r.ideal
			best = &b
		}
	}
	if best == nil {
		return Ideal{}, fmt.Errorf("core: Perf-Pwr found no feasible configuration on %d hosts", len(hosts))
	}
	return tuneDVFS(e, *best, rates, scope)
}

// polishAllocations hill-climbs a packed configuration's CPU allocations:
// the reduction loop stops at the *first* packable state, which can leave
// allocations unbalanced (one tier starved just past the penalty cliff,
// others over-provisioned). Single ±step moves that improve the net
// utility rate — staying within host capacity, the VM minimum, and any
// hard response-time targets — are applied until none remains.
func polishAllocations(e *Evaluator, cfg cluster.Config, rates map[string]float64, scope packScope) (cluster.Config, Steady, error) {
	cat := e.cat
	cur, err := e.Steady(cfg, rates)
	if err != nil {
		return cluster.Config{}, Steady{}, err
	}
	managed := make(map[cluster.VMID]bool, len(scope.managed))
	for _, id := range scope.managed {
		managed[id] = true
	}
	for iter := 0; iter < 64; iter++ {
		improved := false
		for _, id := range cfg.ActiveVMs() {
			if !managed[id] {
				continue
			}
			p, _ := cfg.PlacementOf(id)
			spec, _ := cat.Host(p.Host)
			for _, delta := range []float64{cat.CPUStepPct, -cat.CPUStepPct} {
				next := p.CPUPct + delta
				if next < cat.MinCPUPct-1e-9 || next > spec.UsableCPUPct+1e-9 {
					continue
				}
				if delta > 0 && cfg.AllocatedCPU(p.Host)+delta > spec.UsableCPUPct+1e-9 {
					continue
				}
				cand := cfg.Clone()
				cand.Place(id, p.Host, next)
				st, err := e.Steady(cand, rates)
				if err != nil {
					return cluster.Config{}, Steady{}, err
				}
				if st.NetRate() > cur.NetRate()+1e-12 && scope.meetsTargets(st, rates) {
					cfg, cur = cand, st
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return cfg, cur, nil
}

// tuneDVFS greedily downclocks DVFS-capable hosts of an ideal configuration
// while the net utility rate improves (the §VI extension: lower voltage
// saves power; the model prices the response-time cost). Response-time
// targets are never violated: explicit scope targets when present,
// otherwise the evaluator's utility targets — downclocking is a quiet-phase
// optimization, not a reason to miss objectives.
func tuneDVFS(e *Evaluator, ideal Ideal, rates map[string]float64, scope packScope) (Ideal, error) {
	if scope.rtTargets == nil {
		scope.rtTargets = make(map[string]float64, len(e.util.Apps))
		for name, a := range e.util.Apps {
			scope.rtTargets[name] = a.TargetRT.Seconds()
		}
	}
	// Guard band: a downclocked host must still meet targets if the
	// workload grows ~30% before the next decision — frequency scaling is
	// a quiet-phase optimization and must not amplify the next ramp.
	guard := make(map[string]float64, len(rates))
	for name, r := range rates {
		guard[name] = r * 1.3
	}
	if st, err := e.Steady(ideal.Config, guard); err != nil || !scope.meetsTargets(st, guard) {
		// The best packing has no slack (or is already overloaded):
		// frequency scaling has nothing safe to offer.
		return ideal, err
	}
	improved := true
	for improved {
		improved = false
		for _, h := range ideal.Config.ActiveHosts() {
			spec, ok := e.cat.Host(h)
			if !ok || !spec.SupportsDVFS() {
				continue
			}
			for _, f := range spec.DVFSLevels {
				if f == ideal.Config.HostFreq(h) {
					continue
				}
				cand := ideal.Config.Clone()
				cand.SetHostFreq(h, f)
				st, err := e.Steady(cand, rates)
				if err != nil {
					return Ideal{}, err
				}
				if st.NetRate() <= ideal.Steady.NetRate()+1e-12 || !scope.meetsTargets(st, rates) {
					continue
				}
				// The guard band: still within targets at 1.3× the rates.
				gst, err := e.Steady(cand, guard)
				if err != nil {
					return Ideal{}, err
				}
				if !scope.meetsTargets(gst, guard) {
					continue
				}
				ideal = Ideal{Config: cand, Steady: st}
				improved = true
			}
		}
	}
	return ideal, nil
}

// minHostsNeeded lower-bounds the host count able to hold one replica of
// every required tier at minimum capacity.
func minHostsNeeded(cat *cluster.Catalog, hosts []string) int {
	var required int
	for _, k := range cat.Tiers() {
		if cat.TierRequired(k) {
			required++
		}
	}
	if required == 0 || len(hosts) == 0 {
		return 1
	}
	spec, _ := cat.Host(hosts[0])
	byCount := int(math.Ceil(float64(required) / float64(spec.MaxVMs)))
	byCPU := int(math.Ceil(float64(required) * cat.MinCPUPct / spec.UsableCPUPct))
	perHostMem := (spec.MemoryMB - spec.Dom0MemoryMB) / 200
	byMem := 1
	if perHostMem > 0 {
		byMem = int(math.Ceil(float64(required) / float64(perHostMem)))
	}
	n := byCount
	if byCPU > n {
		n = byCPU
	}
	if byMem > n {
		n = byMem
	}
	if n < 1 {
		n = 1
	}
	return n
}

// allocState is the reduction search state: which replicas are active and
// their CPU allocations.
type allocState struct {
	cpu map[cluster.VMID]float64 // active VMs only
}

func (s allocState) clone() allocState {
	n := allocState{cpu: make(map[cluster.VMID]float64, len(s.cpu))}
	for id, c := range s.cpu {
		n.cpu[id] = c
	}
	return n
}

func (s allocState) sortedVMs() []cluster.VMID {
	ids := make([]cluster.VMID, 0, len(s.cpu))
	for id := range s.cpu {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// packScope bounds what the reduction/packing loop may touch: the VMs it
// places (everything else is held fixed), whether it may deactivate
// replicas, and optional hard response-time ceilings that reductions must
// not violate (the "modified Perf-Pwr optimizer" behind the Pwr-Cost
// baseline).
type packScope struct {
	managed             []cluster.VMID
	fixed               cluster.Config
	allowReplicaRemoval bool
	rtTargets           map[string]float64
	zonePins            map[cluster.VMID]string
	appPools            map[string][]string
	// noAffinity disables the soft same-zone preference for unpinned VMs
	// (pins stay hard). The sweep tries both variants: zone-local packing
	// wins on WAN latency, cross-zone packing wins when the home zone has
	// no capacity left — the model's net rate arbitrates.
	noAffinity bool
}

func (s packScope) meetsTargets(st Steady, rates map[string]float64) bool {
	if s.rtTargets == nil {
		return true
	}
	for appName, target := range s.rtTargets {
		if rates[appName] > 0 && st.RTSec[appName] > target {
			return false
		}
	}
	return true
}

// packWithReduction runs the §IV-A loop for a fixed host subset.
func packWithReduction(e *Evaluator, rates map[string]float64, scope packScope, hosts []string) (cluster.Config, bool, error) {
	cat := e.cat
	// Initial state: every managed replica active at maximum capacity.
	state := allocState{cpu: make(map[cluster.VMID]float64, len(scope.managed))}
	maxCPU := cat.MaxVMCPUPct()
	for _, id := range scope.managed {
		state.cpu[id] = maxCPU
	}

	evalState := func(s allocState) (float64, Steady, error) {
		cfg := spreadConfig(s, scope, hosts)
		st, err := e.Steady(cfg, rates)
		if err != nil {
			return 0, Steady{}, err
		}
		return meanAllocUtil(s, rates, e, scope), st, nil
	}

	curRho, curSt, err := evalState(state)
	if err != nil {
		return cluster.Config{}, false, err
	}
	curPerf := curSt.PerfRate
	if !scope.meetsTargets(curSt, rates) {
		// Even maximum capacities violate a hard target: infeasible.
		return cluster.Config{}, false, nil
	}

	var blocked cluster.VMID
	for iter := 0; ; iter++ {
		cfg, ok, blockedVM := binPack(cat, state, scope, hosts)
		if ok {
			if scope.rtTargets != nil {
				st, err := e.Steady(cfg, rates)
				if err != nil {
					return cluster.Config{}, false, err
				}
				if !scope.meetsTargets(st, rates) {
					return cluster.Config{}, false, nil
				}
			}
			return cfg, true, nil
		}
		blocked = blockedVM
		// When the blocker is pinned to a zone, cutting VMs pinned to a
		// *different* zone cannot unblock the packing — unrestricted
		// gradient cuts would starve unrelated applications first. VMs
		// pinned to the same zone and unpinned VMs (which may be hogging
		// the blocked zone) remain candidates.
		var helps func(cluster.VMID) bool
		if pin, pinned := scope.zonePins[blocked]; pinned {
			helps = func(id cluster.VMID) bool {
				z, ok := scope.zonePins[id]
				return !ok || z == pin
			}
		} else {
			helps = func(cluster.VMID) bool { return true }
		}
		// Generate reduction candidates.
		type candidate struct {
			state     allocState
			rho, perf float64
			gradient  float64
			rt        float64
		}
		var candidates []candidate
		consider := func(s allocState) error {
			rho, st, err := evalState(s)
			if err != nil {
				return err
			}
			if !scope.meetsTargets(st, rates) {
				return nil // hard targets: this reduction is off the table
			}
			perf := st.PerfRate
			dRho := rho - curRho
			dPerf := curPerf - perf // utility lost by the reduction
			g := math.Inf(1)
			if dPerf > 1e-12 {
				g = dRho / dPerf
			} else if dRho <= 1e-12 {
				g = 0
			}
			candidates = append(candidates, candidate{state: s, rho: rho, perf: perf, gradient: g, rt: sumRT(st)})
			return nil
		}
		// (a) reduce one VM's capacity by a step.
		for _, id := range state.sortedVMs() {
			if !helps(id) {
				continue
			}
			if state.cpu[id]-cat.CPUStepPct >= cat.MinCPUPct-1e-9 {
				s := state.clone()
				s.cpu[id] -= cat.CPUStepPct
				if err := consider(s); err != nil {
					return cluster.Config{}, false, err
				}
			}
		}
		// (b) remove one replica from tiers with more than one active.
		if scope.allowReplicaRemoval {
			for _, k := range cat.Tiers() {
				active := activeReplicas(cat, state, k)
				if len(active) <= 1 {
					continue
				}
				victim := active[len(active)-1]
				if !helps(victim) {
					continue
				}
				s := state.clone()
				delete(s.cpu, victim)
				if err := consider(s); err != nil {
					return cluster.Config{}, false, err
				}
			}
		}
		if len(candidates) == 0 {
			return cluster.Config{}, false, nil // fully reduced, still unpackable
		}
		// Highest gradient wins; ties (common when the flat penalty makes
		// further cuts to a saturated VM "free") break toward the candidate
		// with the lowest aggregate response time, so reductions spread
		// rather than starving one VM.
		best := candidates[0]
		for _, c := range candidates[1:] {
			if c.gradient > best.gradient || (c.gradient == best.gradient && c.rt < best.rt) {
				best = c
			}
		}
		state, curRho, curPerf = best.state, best.rho, best.perf
		if iter > 10000 {
			return cluster.Config{}, false, fmt.Errorf("core: Perf-Pwr reduction did not converge")
		}
	}
}

// sumRT aggregates the steady response times across applications, the
// gradient tie-breaker. Sorted iteration keeps the floating-point fold
// bit-identical across runs (map order would shuffle it).
func sumRT(st Steady) float64 {
	names := make([]string, 0, len(st.RTSec))
	for name := range st.RTSec {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	for _, name := range names {
		sum += st.RTSec[name]
	}
	return sum
}

// activeReplicas lists a tier's active replicas in ID order.
func activeReplicas(cat *cluster.Catalog, s allocState, k cluster.TierKey) []cluster.VMID {
	var out []cluster.VMID
	for _, id := range cat.TierVMs(k) {
		if _, ok := s.cpu[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// spreadConfig places the state's VMs round-robin over the host subset
// (on top of the fixed remainder) ignoring capacity constraints —
// intermediate configurations are legal for model evaluation, which depends
// almost entirely on allocations.
func spreadConfig(s allocState, scope packScope, hosts []string) cluster.Config {
	cfg := scope.fixed.Clone()
	for _, h := range hosts {
		cfg.SetHostOn(h, true)
	}
	for i, id := range s.sortedVMs() {
		cfg.Place(id, hosts[i%len(hosts)], s.cpu[id])
	}
	return cfg
}

// meanAllocUtil is the ∇ρ numerator source: the demand-weighted mean
// utilization of the allocation, approximated from request rates and model
// demands. Higher means tighter packing potential.
func meanAllocUtil(s allocState, rates map[string]float64, e *Evaluator, scope packScope) float64 {
	var totalDemand, totalAlloc float64
	// Sorted VM order: the two sums are floating-point folds whose last
	// bits feed the ∇ρ gradient comparisons; map order would flip ties.
	for _, id := range s.sortedVMs() {
		cpu := s.cpu[id]
		vm, ok := e.cat.VM(id)
		if !ok {
			continue
		}
		spec := e.model.Apps()[vm.App]
		if spec == nil {
			continue
		}
		// Demand share of this replica: tier demand split across active
		// replicas of the tier, managed or fixed.
		k := cluster.TierKey{App: vm.App, Tier: vm.Tier}
		n := len(activeReplicas(e.cat, s, k))
		for _, rid := range e.cat.TierVMs(k) {
			if scope.fixed.Active(rid) {
				n++
			}
		}
		if n == 0 {
			continue
		}
		totalDemand += rates[vm.App] * spec.MeanDemandMS(vm.Tier) / 1000 / float64(n)
		totalAlloc += cpu / 100
	}
	if totalAlloc <= 0 {
		return 0
	}
	return totalDemand / totalAlloc
}

// binPack attempts the paper's worst-fit packing: VMs in decreasing size
// order; each goes to the used host with the largest free capacity, or to a
// new empty host if none fits. The packed result is merged over the scope's
// fixed remainder. On failure the VM that could not be placed is returned,
// so the reduction loop can aim its next cut at the actual bottleneck.
func binPack(cat *cluster.Catalog, s allocState, scope packScope, hosts []string) (cluster.Config, bool, cluster.VMID) {
	type hostState struct {
		name    string
		freeCPU float64
		freeMem int
		slots   int
		used    bool
	}
	hs := make([]*hostState, 0, len(hosts))
	for _, h := range hosts {
		spec, _ := cat.Host(h)
		st := &hostState{
			name:    h,
			freeCPU: spec.UsableCPUPct,
			freeMem: spec.MemoryMB - spec.Dom0MemoryMB,
			slots:   spec.MaxVMs,
		}
		// Fixed VMs on in-scope hosts consume capacity up front.
		for _, id := range scope.fixed.VMsOnHost(h) {
			p, _ := scope.fixed.PlacementOf(id)
			vm, _ := cat.VM(id)
			st.freeCPU -= p.CPUPct
			st.freeMem -= vm.MemoryMB
			st.slots--
			st.used = true
		}
		hs = append(hs, st)
	}
	ids := s.sortedVMs()
	// Pack VMs of the same application together (largest first within an
	// app) so the zone-affinity preference below can keep each app inside
	// one data center.
	sort.SliceStable(ids, func(i, j int) bool {
		vi, _ := cat.VM(ids[i])
		vj, _ := cat.VM(ids[j])
		if vi.App != vj.App {
			return vi.App < vj.App
		}
		return s.cpu[ids[i]] > s.cpu[ids[j]]
	})

	cfg := scope.fixed.Clone()
	// appZone remembers where each application's first VM landed; later
	// VMs of the app prefer that zone, keeping tiers off the WAN. In
	// single-zone catalogs every host shares the "" zone and the
	// preference is vacuous (the paper's original worst-fit).
	appZone := make(map[string]string)
	for _, id := range ids {
		vm, _ := cat.VM(id)
		need := s.cpu[id]
		inPool := func(hostName string) bool {
			pool, pooled := scope.appPools[vm.App]
			if !pooled {
				return true
			}
			for _, p := range pool {
				if p == hostName {
					return true
				}
			}
			return false
		}
		fits := func(h *hostState) bool {
			return h.freeCPU >= need-1e-9 && h.freeMem >= vm.MemoryMB && h.slots > 0 && inPool(h.name)
		}
		zone, hasZone := appZone[vm.App]
		if scope.noAffinity {
			hasZone = false
		}
		pin, pinned := scope.zonePins[id]
		if pinned {
			zone, hasZone = pin, true
		}
		pick := func(used bool, zoneOnly bool) *hostState {
			var target *hostState
			for _, h := range hs {
				if h.used != used || !fits(h) {
					continue
				}
				if zoneOnly && hasZone && cat.ZoneOf(h.name) != zone {
					continue
				}
				if target == nil || h.freeCPU > target.freeCPU {
					target = h
				}
				if !used {
					break // first empty host (they are interchangeable)
				}
			}
			return target
		}
		target := pick(true, true)
		if target == nil {
			target = pick(false, true)
		}
		// A pinned application never spills to another zone; unpinned apps
		// fall back to any host (the original worst-fit).
		if target == nil && !pinned {
			target = pick(true, false)
		}
		if target == nil && !pinned {
			target = pick(false, false)
		}
		if target == nil {
			return cluster.Config{}, false, id
		}
		target.used = true
		target.freeCPU -= need
		target.freeMem -= vm.MemoryMB
		target.slots--
		cfg.Place(id, target.name, need)
		if !hasZone {
			appZone[vm.App] = cat.ZoneOf(target.name)
		}
	}
	// Power on exactly the used hosts.
	for _, h := range hs {
		if h.used {
			cfg.SetHostOn(h.name, true)
		}
	}
	return cfg, true, ""
}

// PerfPwrTune is the 1st-level controllers' quick variant: placements and
// replication are fixed; only CPU allocations change. Starting from each
// host's capacity split proportionally to current allocations, it reduces
// by gradient until every host satisfies its capacity constraint.
func PerfPwrTune(e *Evaluator, base cluster.Config, rates map[string]float64, hosts []string) (Ideal, error) {
	cat := e.cat
	inScope := func(h string) bool {
		if len(hosts) == 0 {
			return true
		}
		for _, s := range hosts {
			if s == h {
				return true
			}
		}
		return false
	}

	// Start: every in-scope VM raised to the maximum its host could give it
	// alone; out-of-scope VMs stay fixed.
	cfg := base.Clone()
	var scoped []cluster.VMID
	for _, id := range base.ActiveVMs() {
		p, _ := base.PlacementOf(id)
		if !inScope(p.Host) {
			continue
		}
		spec, _ := cat.Host(p.Host)
		cfg.Place(id, p.Host, spec.UsableCPUPct)
		scoped = append(scoped, id)
	}
	if len(scoped) == 0 {
		st, err := e.Steady(base, rates)
		if err != nil {
			return Ideal{}, err
		}
		return Ideal{Config: base.Clone(), Steady: st}, nil
	}

	overloaded := func(c cluster.Config) bool {
		for _, h := range c.ActiveHosts() {
			spec, _ := cat.Host(h)
			if c.AllocatedCPU(h) > spec.UsableCPUPct+1e-9 {
				return true
			}
		}
		return false
	}

	for iter := 0; overloaded(cfg); iter++ {
		if iter > 10000 {
			return Ideal{}, fmt.Errorf("core: Perf-Pwr tune did not converge")
		}
		curSteady, err := e.Steady(cfg, rates)
		if err != nil {
			return Ideal{}, err
		}
		bestGradient := math.Inf(-1)
		bestRT := math.Inf(1)
		var bestCfg cluster.Config
		var found bool
		for _, id := range scoped {
			p, _ := cfg.PlacementOf(id)
			spec, _ := cat.Host(p.Host)
			if cfg.AllocatedCPU(p.Host) <= spec.UsableCPUPct+1e-9 {
				continue // host already fits; don't shrink its VMs
			}
			if p.CPUPct-cat.CPUStepPct < cat.MinCPUPct-1e-9 {
				continue
			}
			cand := cfg.Clone()
			cand.Place(id, p.Host, p.CPUPct-cat.CPUStepPct)
			st, err := e.Steady(cand, rates)
			if err != nil {
				return Ideal{}, err
			}
			dPerf := curSteady.PerfRate - st.PerfRate
			g := math.Inf(1)
			if dPerf > 1e-12 {
				g = cat.CPUStepPct / dPerf
			}
			rt := sumRT(st)
			if g > bestGradient || (g == bestGradient && rt < bestRT) {
				bestGradient = g
				bestRT = rt
				bestCfg = cand
				found = true
			}
		}
		if !found {
			return Ideal{}, fmt.Errorf("core: Perf-Pwr tune cannot satisfy capacity constraints")
		}
		cfg = bestCfg
	}
	st, err := e.Steady(cfg, rates)
	if err != nil {
		return Ideal{}, err
	}
	return Ideal{Config: cfg, Steady: st}, nil
}
