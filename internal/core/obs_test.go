package core

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/obs"
)

// TestEvaluatorCacheStats exercises the CacheStats accessor and the
// ResetCache flush into the metrics registry.
func TestEvaluatorCacheStats(t *testing.T) {
	e := newEnv(t, 2, 1)
	reg := obs.NewRegistry()
	e.eval.SetObserver(&obs.Observer{Metrics: reg})

	rates := map[string]float64{"rubis1": 50}
	if _, err := e.eval.Steady(e.cfg, rates); err != nil {
		t.Fatal(err)
	}
	if _, err := e.eval.Steady(e.cfg, rates); err != nil {
		t.Fatal(err)
	}
	s := e.eval.CacheStats()
	if s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}

	e.eval.ResetCache()
	if got := reg.CounterValue("eval_cache_hits_total"); got != 1 {
		t.Errorf("eval_cache_hits_total = %d, want 1", got)
	}
	if got := reg.CounterValue("eval_cache_misses_total"); got != 1 {
		t.Errorf("eval_cache_misses_total = %d, want 1", got)
	}
	if got := reg.CounterValue("lqn_solves_total"); got != 1 {
		t.Errorf("lqn_solves_total = %d, want 1", got)
	}
	if s := e.eval.CacheStats(); s != (CacheStats{}) {
		t.Errorf("stats after reset = %+v, want zero", s)
	}
	if hr := (CacheStats{}).HitRate(); hr != 0 {
		t.Errorf("empty hit rate = %v, want 0", hr)
	}
}

// TestSearchResultObservabilityFields checks the fields added for span
// population (PeakFrontier, RootDistance) and the search counters.
func TestSearchResultObservabilityFields(t *testing.T) {
	e := newEnv(t, 4, 2)
	reg := obs.NewRegistry()
	e.eval.SetObserver(&obs.Observer{Metrics: reg})

	rates := map[string]float64{"rubis1": 50, "rubis2": 50}
	ideal, err := PerfPwr(e.eval, rates, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(e.eval, SearchOptions{SelfAware: true})
	s.SetObserver(&obs.Observer{Metrics: reg})
	res, err := s.Search(e.cfg, rates, 8*time.Minute, ideal, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expanded > 0 && res.PeakFrontier < 1 {
		t.Errorf("PeakFrontier = %d, want >= 1", res.PeakFrontier)
	}
	if !ideal.Config.Equal(e.cfg) && res.RootDistance <= 0 {
		t.Errorf("RootDistance = %v, want > 0", res.RootDistance)
	}
	if got := reg.CounterValue("search_invocations_total"); got != 1 {
		t.Errorf("search_invocations_total = %d, want 1", got)
	}
	if got := reg.CounterValue("search_expansions_total"); got != int64(res.Expanded) {
		t.Errorf("search_expansions_total = %d, want %d", got, res.Expanded)
	}
	if h := reg.Histogram("search_expansions", nil).Snapshot(); h.Count != 1 {
		t.Errorf("search_expansions histogram count = %d, want 1", h.Count)
	}
}
