package core

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
)

func TestPerfPwrMeetingTargets(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 60)
	ideal, err := PerfPwrMeetingTargets(e.eval, w)
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.Config.IsCandidate(e.cat) {
		t.Fatalf("target-meeting ideal invalid: %v", ideal.Config.Validate(e.cat))
	}
	for name, a := range e.eval.Utility().Apps {
		if rt := ideal.Steady.RTSec[name]; rt > a.TargetRT.Seconds() {
			t.Errorf("%s RT %v exceeds target %v", name, rt, a.TargetRT.Seconds())
		}
	}
	// The unconstrained optimizer at the same rates may shave capacity
	// below the targets; the constrained one must not, even if that costs
	// power.
	e.eval.ResetCache()
	free, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Steady.Watts < free.Steady.Watts-1e-9 {
		t.Errorf("constrained optimizer uses less power (%v) than unconstrained (%v)?", ideal.Steady.Watts, free.Steady.Watts)
	}
}

func TestEvaluatePlan(t *testing.T) {
	e := newEnv(t, 4, 1)
	w := rates(e, 30)
	stay, err := EvaluatePlan(e.eval, e.cfg, nil, w, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	want := (10 * time.Minute).Seconds() * st.NetRate()
	if diff := stay - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("stay-put plan utility = %v, want %v", stay, want)
	}

	cheap := []cluster.Action{{Kind: cluster.ActionIncreaseCPU, VM: "rubis1-web-0"}}
	cheapU, err := EvaluatePlan(e.eval, e.cfg, cheap, w, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var dst string
	p, _ := e.cfg.PlacementOf("rubis1-db-0")
	for _, h := range e.cfg.ActiveHosts() {
		spec, _ := e.cat.Host(h)
		if h != p.Host && e.cfg.AllocatedCPU(h)+p.CPUPct <= spec.UsableCPUPct &&
			len(e.cfg.VMsOnHost(h)) < spec.MaxVMs {
			dst = h
			break
		}
	}
	if dst == "" {
		t.Skip("no feasible migration destination")
	}
	// The same plan with a round-trip migration bolted on reaches the same
	// final configuration but pays two migrations' transient costs.
	roundTrip := append([]cluster.Action{
		{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst},
		{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: p.Host},
	}, cheap...)
	bothU, err := EvaluatePlan(e.eval, e.cfg, roundTrip, w, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if bothU >= cheapU {
		t.Errorf("round-trip migration plan %v not below cheap plan %v", bothU, cheapU)
	}

	// Infeasible plans error.
	if _, err := EvaluatePlan(e.eval, e.cfg, []cluster.Action{{Kind: cluster.ActionMigrate, VM: "ghost", Host: "h0"}}, w, time.Minute); err == nil {
		t.Error("infeasible plan accepted")
	}
}
