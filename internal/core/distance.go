package core

import (
	"math"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// distancer evaluates ConfigDistance against one fixed ideal configuration
// without allocating: the per-search constants (sorted ideal VM set, total
// ideal CPU, membership index) are computed once, and each call folds over
// the catalog's shared sorted slices plus an optional staged Delta overlay,
// so a child's distance is available before the child is materialized.
//
// The fold order is deliberately identical to ConfigDistance — same terms
// added in the same sequence — so distances (which the search compares
// exactly) are bit-identical to the public function. TestDistancerMatches
// enforces this.
type distancer struct {
	cat        *cluster.Catalog
	ideal      cluster.Config
	idealVMs   []cluster.VMID
	idealIn    map[cluster.VMID]bool
	totalIdeal float64
}

func newDistancer(cat *cluster.Catalog, ideal cluster.Config) *distancer {
	d := &distancer{
		cat:      cat,
		ideal:    ideal,
		idealVMs: ideal.ActiveVMs(),
	}
	d.idealIn = make(map[cluster.VMID]bool, len(d.idealVMs))
	for _, id := range d.idealVMs {
		p, _ := ideal.PlacementOf(id)
		d.totalIdeal += p.CPUPct
		d.idealIn[id] = true
	}
	return d
}

// distance is ConfigDistance(cfg+delta, ideal); pass a nil delta to measure
// cfg itself.
func (dc *distancer) distance(cfg cluster.Config, delta *cluster.Delta) float64 {
	var dist float64
	for _, id := range dc.idealVMs {
		ip, _ := dc.ideal.PlacementOf(id)
		p, active := cfg.PlacementOver(delta, id)
		if !active {
			dist += distPlaceWeight
			continue
		}
		if p.Host != ip.Host {
			dist += distPlaceWeight
		}
		w := 1.0
		if dc.totalIdeal > 0 {
			w = ip.CPUPct / dc.totalIdeal * float64(len(dc.idealVMs))
		}
		dist += distCPUWeight * w * math.Abs(p.CPUPct-ip.CPUPct) / 10
	}
	// VMs active here but dormant in the ideal. ConfigDistance walks the
	// configuration's sorted active set; walking the catalog's sorted VM
	// universe and filtering visits the same VMs in the same order (every
	// placeable VM is cataloged), adding the same constant each time.
	for _, id := range dc.cat.VMIDs() {
		if dc.idealIn[id] {
			continue
		}
		if _, active := cfg.PlacementOver(delta, id); active {
			dist += distPlaceWeight
		}
	}
	// Host power/frequency mismatches are integer counts folded in once, so
	// only membership in the active union matters, not visit order.
	// ConfigDistance unions the two active host sets; restricting the
	// catalog walk to hosts active on either side reproduces it (an off-off
	// host with a leftover DVFS entry is skipped there too).
	var powerMismatch, freqMismatch int
	for _, h := range dc.cat.HostNames() {
		on := cfg.HostOnOver(delta, h)
		ion := dc.ideal.HostOn(h)
		if !on && !ion {
			continue
		}
		if on != ion {
			powerMismatch++
		}
		if cfg.HostFreqOver(delta, h) != dc.ideal.HostFreq(h) {
			freqMismatch++
		}
	}
	dist += float64(powerMismatch)*distHostWeight + float64(freqMismatch)*distFreqWeight
	return dist
}
