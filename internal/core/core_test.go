package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/utility"
)

// env is a ready-to-use controller environment for tests.
type env struct {
	cat  *cluster.Catalog
	apps []*app.Spec
	eval *Evaluator
	cfg  cluster.Config // calibrated default config
}

// newEnv builds nApps RUBiS applications on nHosts hosts, calibrated to the
// paper's 400 ms @ 50 req/s operating point.
func newEnv(t testing.TB, nHosts, nApps int) *env {
	t.Helper()
	apps := make([]*app.Spec, nApps)
	names := make([]string, nApps)
	for i := range apps {
		names[i] = "rubis" + string(rune('1'+i))
		apps[i] = app.RUBiS(names[i])
	}
	hosts := make([]cluster.HostSpec, nHosts)
	for i := range hosts {
		hosts[i] = cluster.DefaultHostSpec("h" + string(rune('0'+i)))
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		t.Fatal(err)
	}
	defHosts := 2 * nApps
	if defHosts > nHosts {
		defHosts = nHosts
	}
	cfg, err := app.DefaultConfig(cat, apps, defHosts, 40)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]float64{}
	for _, n := range names {
		load[n] = 50
	}
	if _, err := lqn.CalibrateDemands(cat, apps, cfg, load, names[0]); err != nil {
		t.Fatal(err)
	}
	model, err := lqn.NewModel(cat, apps, lqn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	costMgr, err := cost.NewManager(cat, cost.PaperTable(), 8)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := NewEvaluator(cat, model, utility.PaperParams(names), costMgr)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cat: cat, apps: apps, eval: eval, cfg: cfg}
}

func rates(e *env, r float64) map[string]float64 {
	out := make(map[string]float64)
	for _, a := range e.apps {
		out[a.Name] = r
	}
	return out
}

func TestEvaluatorSteadyAndCache(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 50)
	s1, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Watts <= 0 {
		t.Error("no watts predicted")
	}
	if s1.PowerRate >= 0 {
		t.Error("power rate should be negative")
	}
	if s1.RTSec["rubis1"] <= 0 {
		t.Error("no RT predicted")
	}
	evals := e.eval.Evals()
	s2, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if e.eval.Evals() != evals {
		t.Error("second Steady call was not served from cache")
	}
	if s1.Watts != s2.Watts {
		t.Error("cache returned different result")
	}
	e.eval.ResetCache()
	if e.eval.Evals() != 0 {
		t.Error("ResetCache did not clear counters")
	}
}

func TestEvaluatorActionCost(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 50)
	base, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := e.cfg.PlacementOf("rubis1-db-0")
	var dst string
	for _, h := range e.cfg.ActiveHosts() {
		if h != src.Host {
			dst = h
			break
		}
	}
	_, filled, err := cluster.Apply(e.cat, e.cfg, cluster.Action{Kind: cluster.ActionMigrate, VM: "rubis1-db-0", Host: dst})
	if err != nil {
		t.Fatal(err)
	}
	ac := e.eval.Action(e.cfg, base, filled, w)
	if ac.Duration <= 0 {
		t.Error("no duration")
	}
	if ac.Rate >= base.NetRate() {
		t.Errorf("action rate %v not below steady rate %v", ac.Rate, base.NetRate())
	}
}

func TestPerfPwrConsolidatesAtLowLoad(t *testing.T) {
	e := newEnv(t, 4, 2)
	low, err := PerfPwr(e.eval, rates(e, 5), PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Config.IsCandidate(e.cat) {
		t.Fatalf("ideal config not a candidate: %v", low.Config.Validate(e.cat))
	}
	e.eval.ResetCache()
	high, err := PerfPwr(e.eval, rates(e, 95), PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !high.Config.IsCandidate(e.cat) {
		t.Fatalf("ideal high config not a candidate: %v", high.Config.Validate(e.cat))
	}
	if low.Config.NumActiveHosts() > high.Config.NumActiveHosts() {
		t.Errorf("low load uses %d hosts, high load %d; expected consolidation at low load",
			low.Config.NumActiveHosts(), high.Config.NumActiveHosts())
	}
	if low.Steady.Watts >= high.Steady.Watts {
		t.Errorf("low-load watts %v not below high-load watts %v", low.Steady.Watts, high.Steady.Watts)
	}
}

func TestPerfPwrIdealBeatsDefault(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 30)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Steady.NetRate() < cur.NetRate()-1e-9 {
		t.Errorf("ideal rate %v below current config rate %v; heuristic not admissible",
			ideal.Steady.NetRate(), cur.NetRate())
	}
}

func TestPerfPwrHostSubset(t *testing.T) {
	e := newEnv(t, 4, 1)
	subset := e.cat.HostNames()[:2]
	ideal, err := PerfPwr(e.eval, rates(e, 40), PerfPwrOptions{Hosts: subset})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ideal.Config.ActiveHosts() {
		if h != subset[0] && h != subset[1] {
			t.Errorf("ideal uses out-of-scope host %s", h)
		}
	}
}

func TestPerfPwrTuneKeepsPlacements(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 60)
	ideal, err := PerfPwrTune(e.eval, e.cfg, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ideal.Config.IsCandidate(e.cat) {
		t.Fatalf("tuned config invalid: %v", ideal.Config.Validate(e.cat))
	}
	// Same VMs on the same hosts; only CPU may differ.
	for _, id := range e.cfg.ActiveVMs() {
		p0, _ := e.cfg.PlacementOf(id)
		p1, ok := ideal.Config.PlacementOf(id)
		if !ok || p1.Host != p0.Host {
			t.Errorf("VM %s placement changed: %+v -> %+v", id, p0, p1)
		}
	}
	if got, want := len(ideal.Config.ActiveVMs()), len(e.cfg.ActiveVMs()); got != want {
		t.Errorf("replication changed: %d VMs, want %d", got, want)
	}
	// At 60 req/s the tuner should grant more CPU than the 40% default to
	// at least one VM.
	raised := false
	for _, id := range e.cfg.ActiveVMs() {
		if p, _ := ideal.Config.PlacementOf(id); p.CPUPct > 40 {
			raised = true
		}
	}
	if !raised {
		t.Error("tuner raised no allocation at high load")
	}
}

func TestMinHostsNeeded(t *testing.T) {
	e := newEnv(t, 4, 2)
	// 6 required tiers at 20% on 80%-usable 4-slot hosts -> ceil(6*20/80)=2.
	if got := minHostsNeeded(e.cat, e.cat.HostNames()); got != 2 {
		t.Errorf("minHostsNeeded = %d, want 2", got)
	}
}

func TestSearchNoopWhenIdealEqualsCurrent(t *testing.T) {
	e := newEnv(t, 4, 1)
	w := rates(e, 40)
	st, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(e.eval, SearchOptions{})
	res, err := s.Search(e.cfg, w, 10*time.Minute, Ideal{Config: e.cfg.Clone(), Steady: st}, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) != 0 {
		t.Errorf("plan = %v, want empty when ideal == current", res.Plan)
	}
}

func TestSearchPlanIsFeasibleAndBeatsDoingNothing(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10) // low load: consolidation should pay off
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mistral's production setting: Self-Aware search whose pruning steers
	// the frontier toward the ideal configuration once the delay budget is
	// spent.
	s := NewSearcher(e.eval, SearchOptions{SelfAware: true, DelayFraction: 0.001, MaxExpansions: 4000})
	cw := 2 * time.Hour // long window: disruptive actions recoup their cost
	res, err := s.Search(e.cfg, w, cw, ideal, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan) == 0 {
		t.Fatal("no plan found despite long window and consolidation potential")
	}
	final, _, err := cluster.ApplyAll(e.cat, e.cfg, res.Plan)
	if err != nil {
		t.Fatalf("plan infeasible: %v", err)
	}
	if !final.IsCandidate(e.cat) {
		t.Errorf("plan ends in invalid config: %v", final.Validate(e.cat))
	}
	// Compare with doing nothing.
	st, err := e.eval.Steady(e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	stayUtility := cw.Seconds() * st.NetRate()
	if res.Utility < stayUtility {
		t.Errorf("plan utility %v below stay-put utility %v", res.Utility, stayUtility)
	}
	// The plan should reduce active hosts (consolidation).
	if final.NumActiveHosts() >= e.cfg.NumActiveHosts() {
		t.Errorf("no consolidation: %d -> %d hosts", e.cfg.NumActiveHosts(), final.NumActiveHosts())
	}
}

func TestSearchShortWindowAvoidsExpensiveActions(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(e.eval, SearchOptions{MaxExpansions: 1500})
	// A control window much shorter than a migration's payoff horizon.
	res, err := s.Search(e.cfg, w, 90*time.Second, ideal, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Plan {
		switch a.Kind {
		case cluster.ActionMigrate, cluster.ActionAddReplica, cluster.ActionRemoveReplica, cluster.ActionStartHost, cluster.ActionStopHost:
			t.Errorf("expensive action %s chosen for a 90s window", a)
		}
	}
}

func TestSearchRespectsActionSpace(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(e.eval, SearchOptions{MaxExpansions: 600})
	space := cluster.ActionSpace{Kinds: []cluster.ActionKind{cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU}}
	res, err := s.Search(e.cfg, w, time.Hour, ideal, ExpectedUtility{}, space)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Plan {
		if a.Kind != cluster.ActionIncreaseCPU && a.Kind != cluster.ActionDecreaseCPU {
			t.Errorf("out-of-space action %s", a)
		}
	}
}

func TestSelfAwareSearchIsFasterThanNaive(t *testing.T) {
	// A crisis instance: the system sits consolidated on two hosts while
	// both applications' rates have jumped, so the ideal configuration is
	// many actions away. The naive search (no width pruning, no deadline)
	// must grind the frontier down to its ε-margin; the Self-Aware search
	// beams toward the ideal once its self-cost trigger fires.
	e := newEnv(t, 4, 2)
	w := map[string]float64{"rubis1": 70, "rubis2": 60}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	cfg.Place("rubis1-web-0", "h0", 20)
	cfg.Place("rubis1-app-0", "h0", 30)
	cfg.Place("rubis1-db-0", "h0", 30)
	cfg.Place("rubis2-web-0", "h1", 20)
	cfg.Place("rubis2-app-0", "h1", 30)
	cfg.Place("rubis2-db-0", "h1", 30)
	if !cfg.IsCandidate(e.cat) {
		t.Fatalf("bad crisis config: %v", cfg.Validate(e.cat))
	}
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cw := 12 * time.Minute
	naive := NewSearcher(e.eval, SearchOptions{MaxExpansions: 1500})
	nRes, err := naive.Search(cfg, w, cw, ideal, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	e.eval.ResetCache()
	// A small expected utility makes the self-cost budget trigger early:
	// the Self-Aware search beams almost from the start.
	aware := NewSearcher(e.eval, SearchOptions{SelfAware: true, MaxExpansions: 1500})
	aRes, err := aware.Search(cfg, w, cw, ideal, ExpectedUtility{Total: 0.01, PerfRate: 0.02, PwrRate: -0.01}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	// At this instance size the two variants are close (the decisive gaps
	// appear at the Fig. 10 / Table I scales, covered by the benches);
	// what must hold here is that self-awareness never costs much time and
	// always respects its own deadline.
	if aRes.SearchTime > nRes.SearchTime*13/10 {
		t.Errorf("self-aware search time %v well above naive %v", aRes.SearchTime, nRes.SearchTime)
	}
	deadline := 2 * time.Duration(float64(cw)*0.05)
	if aRes.SearchTime > deadline+time.Second {
		t.Errorf("self-aware exceeded its decision deadline: %v > %v", aRes.SearchTime, deadline)
	}
	if aRes.SearchCost <= 0 || nRes.SearchCost <= 0 {
		t.Error("search cost not accounted")
	}
	// Both plans must at least match staying put.
	st, err := e.eval.Steady(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	stay := cw.Seconds() * st.NetRate()
	if aRes.Utility < stay-1e-9 || nRes.Utility < stay-1e-9 {
		t.Errorf("utilities %v/%v below stay-put %v", aRes.Utility, nRes.Utility, stay)
	}
}

func TestConfigDistance(t *testing.T) {
	e := newEnv(t, 4, 1)
	if d := ConfigDistance(e.cfg, e.cfg); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
	other := e.cfg.Clone()
	p, _ := other.PlacementOf("rubis1-web-0")
	other.Place("rubis1-web-0", p.Host, p.CPUPct+20)
	d1 := ConfigDistance(other, e.cfg)
	if d1 <= 0 {
		t.Errorf("CPU-changed distance = %v, want > 0", d1)
	}
	moved := e.cfg.Clone()
	var dst string
	for _, h := range moved.ActiveHosts() {
		if h != p.Host {
			dst = h
			break
		}
	}
	moved.Place("rubis1-web-0", dst, p.CPUPct)
	d2 := ConfigDistance(moved, e.cfg)
	if d2 <= 0 {
		t.Errorf("moved distance = %v, want > 0", d2)
	}
}

func TestControllerBandGating(t *testing.T) {
	e := newEnv(t, 4, 2)
	ctrl, err := NewController(e.eval, ControllerOptions{
		Name:      "L2",
		BandWidth: 8,
		Search:    SearchOptions{MaxExpansions: 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := rates(e, 50)
	d1, err := ctrl.Decide(0, e.cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Invoked {
		t.Fatal("first decision not invoked")
	}
	// Within the band: no invocation.
	w2 := rates(e, 52)
	d2, err := ctrl.Decide(2*time.Minute, e.cfg, w2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Invoked {
		t.Error("decision invoked despite rates inside the 8 req/s band")
	}
	// Escaping the band re-invokes and measures the stability interval.
	w3 := rates(e, 70)
	d3, err := ctrl.Decide(10*time.Minute, e.cfg, w3)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Invoked {
		t.Fatal("band escape did not invoke controller")
	}
	if d3.MeasuredInterval != 10*time.Minute {
		t.Errorf("measured interval = %v, want 10m", d3.MeasuredInterval)
	}
	if d3.CW < ctrl.opts.MonitoringInterval {
		t.Errorf("CW = %v below monitoring interval", d3.CW)
	}
}

func TestControllerZeroBandAlwaysRuns(t *testing.T) {
	e := newEnv(t, 4, 1)
	ctrl, err := NewController(e.eval, ControllerOptions{
		Name:   "L1",
		Scope:  ScopeTune,
		Search: SearchOptions{MaxExpansions: 200},
		Space:  cluster.ActionSpace{Kinds: []cluster.ActionKind{cluster.ActionIncreaseCPU, cluster.ActionDecreaseCPU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Decide(0, e.cfg, rates(e, 50)); err != nil {
		t.Fatal(err)
	}
	d, err := ctrl.Decide(2*time.Minute, e.cfg, rates(e, 50.3))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Invoked {
		t.Error("zero-width band did not trigger on a small change")
	}
}

func TestControllerExpectedUtility(t *testing.T) {
	e := newEnv(t, 4, 1)
	ctrl, err := NewController(e.eval, ControllerOptions{Name: "x", MonitoringInterval: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.expected(4 * time.Minute); got.Total != 0 {
		t.Errorf("expected with no history = %v, want 0", got.Total)
	}
	ctrl.RecordWindow(2.0, 0.02, -0.01)
	ctrl.RecordWindow(1.0, 0.015, -0.01)
	ctrl.RecordWindow(3.0, 0.03, -0.01)
	got := ctrl.expected(4 * time.Minute)
	if got.Total != 2.0 { // lowest (1.0) scaled by 4m/2m
		t.Errorf("UH = %v, want 2.0", got.Total)
	}
	// History is bounded.
	ctrl.RecordWindow(5, 0.02, -0.01)
	ctrl.RecordWindow(6, 0.02, -0.01)
	if len(ctrl.history) != 3 {
		t.Errorf("history len = %d, want 3", len(ctrl.history))
	}
}

func TestSearchDeadlineTruncates(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(deadline time.Duration) SearchResult {
		e.eval.ResetCache()
		s := NewSearcher(e.eval, SearchOptions{MaxExpansions: 4000, MaxSearchTime: deadline})
		res, err := s.Search(e.cfg, w, 2*time.Hour, ideal, ExpectedUtility{}, cluster.ActionSpace{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(0)
	// A deadline of one child's simulated time trips almost immediately.
	tight := run(time.Millisecond)
	if !tight.Truncated {
		t.Error("1ms deadline did not truncate the search")
	}
	if tight.Expanded >= free.Expanded {
		t.Errorf("deadline did not shrink the search: %d vs %d expansions", tight.Expanded, free.Expanded)
	}
	if tight.SearchTime > free.SearchTime {
		t.Errorf("deadline search took longer: %v vs %v", tight.SearchTime, free.SearchTime)
	}
	// The deadline is simulated time, so it is deterministic across Workers.
	e2 := newEnv(t, 4, 2)
	par := func(workers int) SearchResult {
		e2.eval.ResetCache()
		s := NewSearcher(e2.eval, SearchOptions{MaxExpansions: 4000, MaxSearchTime: 50 * time.Millisecond, Workers: workers})
		res, err := s.Search(e2.cfg, w, 2*time.Hour, ideal, ExpectedUtility{}, cluster.ActionSpace{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := par(1), par(8); !reflect.DeepEqual(a, b) {
		t.Errorf("deadline search diverges across workers:\n%+v\n%+v", a, b)
	}
}
