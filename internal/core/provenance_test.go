package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/provenance"
)

// TestSearchProvenanceDigest runs an instrumented consolidation search and
// checks the flight-recorder digest: the chosen plan's Eq. 3 ledger must
// reproduce SearchResult.Utility bit-for-bit (the replay performs the same
// float operations in the same order), and the whole digest must pass the
// provenance validator that mistral-explain --check applies.
func TestSearchProvenanceDigest(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(e.eval, SearchOptions{MaxExpansions: 1500, Provenance: true})
	res, err := s.Search(e.cfg, w, time.Hour, ideal, ExpectedUtility{}, cluster.ActionSpace{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Prov
	if d == nil {
		t.Fatal("Provenance enabled but SearchResult.Prov is nil")
	}
	if d.Termination == "" {
		t.Error("no termination reason recorded")
	}
	if d.Expanded != res.Expanded || d.Generated != res.Generated {
		t.Errorf("digest stats (%d, %d) disagree with result (%d, %d)",
			d.Expanded, d.Generated, res.Expanded, res.Generated)
	}
	if res.Expanded > 0 && len(d.Vertices) == 0 {
		t.Error("expansions ran but no vertices digested")
	}
	if len(d.Vertices)+d.DroppedVertices != res.Expanded {
		t.Errorf("vertices %d + dropped %d != expanded %d", len(d.Vertices), d.DroppedVertices, res.Expanded)
	}
	if len(d.Rejected) > provMaxRejected {
		t.Errorf("%d rejected alternatives, cap is %d", len(d.Rejected), provMaxRejected)
	}
	if len(res.Plan) != len(d.Chosen.Actions) {
		t.Errorf("plan has %d actions, ledger has %d", len(res.Plan), len(d.Chosen.Actions))
	}
	if d.Chosen.Utility != res.Utility {
		t.Errorf("chosen ledger utility %v != search utility %v (want bit-exact)", d.Chosen.Utility, res.Utility)
	}
	rec := &provenance.Record{
		Schema: provenance.SchemaV1, Strategy: "test", Invoked: true,
		Decisions: []*provenance.DecisionProv{{Controller: "test", Search: d}},
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("digest fails provenance validation: %v", err)
	}
}

// TestSearchProvenanceZeroImpact checks the zero-overhead contract: the
// instrumented search returns the same plan, utility, and statistics as the
// uninstrumented one, and the uninstrumented one carries no digest.
func TestSearchProvenanceZeroImpact(t *testing.T) {
	e := newEnv(t, 4, 2)
	w := rates(e, 10)
	ideal, err := PerfPwr(e.eval, w, PerfPwrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(prov bool) SearchResult {
		s := NewSearcher(e.eval, SearchOptions{MaxExpansions: 1500, Provenance: prov})
		res, err := s.Search(e.cfg, w, time.Hour, ideal, ExpectedUtility{}, cluster.ActionSpace{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off, on := run(false), run(true)
	if off.Prov != nil {
		t.Error("Prov set with provenance disabled")
	}
	if on.Prov == nil {
		t.Fatal("Prov nil with provenance enabled")
	}
	on.Prov = nil
	if !reflect.DeepEqual(off, on) {
		t.Errorf("instrumented search changed the result:\noff: %+v\non:  %+v", off, on)
	}
}

// TestControllerDecisionProvenance checks the controller-level capture: the
// prediction context (band, measured vs. predicted interval, floors, ARMA
// state) and the search digest ride on the Decision.
func TestControllerDecisionProvenance(t *testing.T) {
	e := newEnv(t, 4, 2)
	ctrl, err := NewController(e.eval, ControllerOptions{
		Name:       "L2",
		BandWidth:  8,
		Search:     SearchOptions{MaxExpansions: 400},
		Provenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ctrl.Decide(0, e.cfg, rates(e, 50))
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Invoked {
		t.Fatal("first decision not invoked")
	}
	p := d1.Prov
	if p == nil || p.Predict == nil || p.Search == nil {
		t.Fatalf("incomplete provenance: %+v", p)
	}
	if p.Controller != "L2" {
		t.Errorf("controller label %q", p.Controller)
	}
	if p.Predict.BandWidth != 8 {
		t.Errorf("band width %v", p.Predict.BandWidth)
	}
	if p.Predict.CWSec != d1.CW.Seconds() {
		t.Errorf("prov CW %vs != decision CW %v", p.Predict.CWSec, d1.CW)
	}
	// The seed prediction (2×M = 4 min) is below the MinCW floor (8 min).
	if p.Predict.Floor != "min-cw" {
		t.Errorf("floor %q, want min-cw", p.Predict.Floor)
	}

	// A band escape measures the stability interval and feeds the ARMA
	// estimator; the provenance must carry both.
	d2, err := ctrl.Decide(10*time.Minute, e.cfg, rates(e, 70))
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Invoked {
		t.Fatal("band escape did not invoke controller")
	}
	if got := d2.Prov.Predict.MeasuredSec; got != 600 {
		t.Errorf("measured interval %vs, want 600s", got)
	}
	if len(d2.Prov.Predict.ARMAMeasured) == 0 {
		t.Error("ARMA measurement history empty after an observation")
	}
}
