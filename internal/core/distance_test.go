package core

import (
	"testing"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/sim"
)

// TestDistancerMatches pins the contract the search relies on: the
// precomputed distancer folds the exact floating-point result of
// ConfigDistance — bit-for-bit, not approximately — both when measuring a
// configuration directly and when measuring a staged child through its
// Delta overlay.
func TestDistancerMatches(t *testing.T) {
	cat := newEnv(t, 4, 2).cat
	rng := sim.NewRNG(13, 0)
	for trial := 0; trial < 40; trial++ {
		ideal, ok := randomCandidate(cat, rng)
		if !ok {
			continue
		}
		cfg, ok := randomCandidate(cat, rng)
		if !ok {
			continue
		}
		// Leave a stale DVFS entry on an off host: ConfigDistance skips
		// hosts off in both configurations even when hostFreq remembers
		// them, and the distancer must too.
		for _, h := range cat.HostNames() {
			if !cfg.HostOn(h) && !ideal.HostOn(h) {
				cfg.SetHostFreq(h, 0.867)
				break
			}
		}
		dc := newDistancer(cat, ideal)
		if got, want := dc.distance(cfg, nil), ConfigDistance(cfg, ideal); got != want {
			t.Fatalf("trial %d: distancer %.17g != ConfigDistance %.17g", trial, got, want)
		}
		for _, a := range cluster.Enumerate(cat, cfg, cluster.ActionSpace{}) {
			filled, delta, err := cluster.Stage(cat, cfg, a)
			if err != nil {
				t.Fatalf("trial %d: stage %s: %v", trial, a, err)
			}
			next, _, err := cluster.Apply(cat, cfg, a)
			if err != nil {
				t.Fatalf("trial %d: apply %s: %v", trial, a, err)
			}
			got := dc.distance(cfg, &delta)
			want := ConfigDistance(next, ideal)
			if got != want {
				t.Fatalf("trial %d action %s: overlay distance %.17g != materialized %.17g", trial, filled, got, want)
			}
		}
	}
}
