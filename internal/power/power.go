// Package power implements the utilization-based host power model of
// §III-B: pwr = pwr_idle + (pwr_busy − pwr_idle)·(2ρ − ρ^r), with the
// exponent r calibrated offline by least squares against metered samples,
// plus system-level aggregation over powered-on hosts.
package power

import (
	"fmt"
	"math"

	"github.com/mistralcloud/mistral/internal/cluster"
)

// HostWatts returns the modeled power draw of a host at CPU utilization
// util in [0,1], using the host's calibrated parameters. Utilization is
// clamped to [0,1].
func HostWatts(spec cluster.HostSpec, util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	r := spec.PowerExponent
	if r <= 0 {
		r = 1
	}
	return spec.IdleWatts + (spec.BusyWatts-spec.IdleWatts)*(2*util-math.Pow(util, r))
}

// HostWattsAtFreq extends the model with DVFS: dynamic power scales
// roughly with the cube of frequency (voltage tracks frequency), while a
// smaller share of the idle draw also falls with frequency. At nominal
// frequency (1.0) it reduces exactly to HostWatts.
func HostWattsAtFreq(spec cluster.HostSpec, util, freq float64) float64 {
	if freq >= 1 || freq <= 0 {
		return HostWatts(spec, util)
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	r := spec.PowerExponent
	if r <= 0 {
		r = 1
	}
	idle := spec.IdleWatts * (0.85 + 0.15*freq)
	dynamic := (spec.BusyWatts - spec.IdleWatts) * (2*util - math.Pow(util, r)) * (0.35 + 0.65*freq*freq*freq)
	return idle + dynamic
}

// SystemWatts sums modeled power across all powered-on hosts of cfg, using
// hostUtil (utilization per host name; missing entries default to zero)
// and each host's DVFS frequency. Powered-off hosts draw nothing.
func SystemWatts(cat *cluster.Catalog, cfg cluster.Config, hostUtil map[string]float64) float64 {
	var total float64
	for _, h := range cfg.ActiveHosts() {
		spec, ok := cat.Host(h)
		if !ok {
			continue
		}
		total += HostWattsAtFreq(spec, hostUtil[h], cfg.HostFreq(h))
	}
	return total
}

// Sample is one offline calibration measurement: metered watts at a given
// CPU utilization.
type Sample struct {
	Util  float64
	Watts float64
}

// FitR calibrates the exponent r of the power model for a host by
// minimizing the squared error against metered samples, exactly as the
// paper's "model calibration phase" does. The search is a golden-section
// minimization over r ∈ [0.5, 8], which brackets all physically plausible
// concavities. It returns an error if no samples are provided.
func FitR(spec cluster.HostSpec, samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("power: FitR needs at least one sample")
	}
	sse := func(r float64) float64 {
		s := spec
		s.PowerExponent = r
		var sum float64
		for _, smp := range samples {
			d := HostWatts(s, smp.Util) - smp.Watts
			sum += d * d
		}
		return sum
	}
	const (
		lo, hi = 0.5, 8.0
		phi    = 0.6180339887498949
	)
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := sse(c), sse(d)
	for i := 0; i < 100 && b-a > 1e-9; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = sse(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = sse(d)
		}
	}
	return (a + b) / 2, nil
}

// CalibrationCampaign generates model samples for a host across a
// utilization sweep using a ground-truth exponent and measurement noise
// produced by the supplied jitter function (e.g. a seeded RNG). It supports
// tests and the offline-calibration example; production users calibrate
// against a real meter instead.
func CalibrationCampaign(spec cluster.HostSpec, trueR float64, points int, jitter func(watts float64) float64) []Sample {
	if points < 2 {
		points = 2
	}
	truth := spec
	truth.PowerExponent = trueR
	samples := make([]Sample, 0, points)
	for i := 0; i < points; i++ {
		u := float64(i) / float64(points-1)
		w := HostWatts(truth, u)
		if jitter != nil {
			w = jitter(w)
		}
		samples = append(samples, Sample{Util: u, Watts: w})
	}
	return samples
}
