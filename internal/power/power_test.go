package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/sim"
)

func TestHostWattsEndpoints(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	if got := HostWatts(spec, 0); math.Abs(got-spec.IdleWatts) > 1e-9 {
		t.Errorf("watts at 0%% = %v, want idle %v", got, spec.IdleWatts)
	}
	// At rho=1: 2*1 - 1^r = 1 regardless of r -> busy watts.
	if got := HostWatts(spec, 1); math.Abs(got-spec.BusyWatts) > 1e-9 {
		t.Errorf("watts at 100%% = %v, want busy %v", got, spec.BusyWatts)
	}
	// Clamping.
	if HostWatts(spec, -0.5) != HostWatts(spec, 0) || HostWatts(spec, 1.5) != HostWatts(spec, 1) {
		t.Error("utilization not clamped")
	}
}

func TestHostWattsMonotoneAndConcaveShape(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	prev := -1.0
	for u := 0.0; u <= 1.0001; u += 0.01 {
		w := HostWatts(spec, u)
		if w < prev {
			t.Fatalf("power not monotone at util %v: %v < %v", u, w, prev)
		}
		prev = w
	}
	// The 2ρ−ρ^r curve rises faster than linear at low utilization (r>1).
	mid := HostWatts(spec, 0.5)
	linear := spec.IdleWatts + (spec.BusyWatts-spec.IdleWatts)*0.5
	if mid <= linear {
		t.Errorf("model at 50%% = %v, want above linear %v", mid, linear)
	}
}

func TestHostWattsDefaultExponent(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	spec.PowerExponent = 0 // invalid -> treated as linear-compatible r=1
	got := HostWatts(spec, 0.5)
	want := spec.IdleWatts + (spec.BusyWatts-spec.IdleWatts)*(2*0.5-0.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("watts = %v, want %v", got, want)
	}
}

func TestSystemWattsSumsOnlyActiveHosts(t *testing.T) {
	cat, err := cluster.NewCatalog(cluster.CatalogConfig{
		Hosts: []cluster.HostSpec{cluster.DefaultHostSpec("h0"), cluster.DefaultHostSpec("h1"), cluster.DefaultHostSpec("h2")},
		VMs:   []cluster.VMSpec{{ID: "v", App: "a", Tier: "t", MemoryMB: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.NewConfig()
	cfg.SetHostOn("h0", true)
	cfg.SetHostOn("h1", true)
	util := map[string]float64{"h0": 0.5, "h1": 0.0, "h2": 0.9}
	got := SystemWatts(cat, cfg, util)
	spec, _ := cat.Host("h0")
	want := HostWatts(spec, 0.5) + HostWatts(spec, 0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SystemWatts = %v, want %v (h2 is off)", got, want)
	}
	if got := SystemWatts(cat, cluster.NewConfig(), util); got != 0 {
		t.Errorf("SystemWatts with all hosts off = %v, want 0", got)
	}
}

func TestFitRRecoversTrueExponent(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	for _, trueR := range []float64{1.1, 1.4, 2.0, 3.5} {
		samples := CalibrationCampaign(spec, trueR, 50, nil)
		got, err := FitR(spec, samples)
		if err != nil {
			t.Fatalf("FitR: %v", err)
		}
		if math.Abs(got-trueR) > 0.01 {
			t.Errorf("FitR = %v, want %v", got, trueR)
		}
	}
}

func TestFitRWithNoise(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	rng := sim.NewRNG(1, 2)
	samples := CalibrationCampaign(spec, 1.4, 200, func(w float64) float64 {
		return rng.Jitter(w, 0.02)
	})
	got, err := FitR(spec, samples)
	if err != nil {
		t.Fatalf("FitR: %v", err)
	}
	if math.Abs(got-1.4) > 0.25 {
		t.Errorf("FitR with noise = %v, want ~1.4", got)
	}
}

func TestFitRNoSamples(t *testing.T) {
	if _, err := FitR(cluster.DefaultHostSpec("h"), nil); err == nil {
		t.Error("FitR accepted empty samples")
	}
}

func TestCalibrationCampaignMinPoints(t *testing.T) {
	samples := CalibrationCampaign(cluster.DefaultHostSpec("h"), 1.4, 0, nil)
	if len(samples) != 2 {
		t.Errorf("samples = %d, want clamped to 2", len(samples))
	}
}

func TestHostWattsBoundedProperty(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	prop := func(u float64, rRaw uint8) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		s := spec
		s.PowerExponent = 0.5 + float64(rRaw)/255*7.5
		w := HostWatts(s, u)
		return w >= s.IdleWatts-1e-9 && w <= s.BusyWatts+ // 2ρ−ρ^r peaks above 1 inside (0,1) for r>1
			(s.BusyWatts-s.IdleWatts)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHostWattsAtFreqEdges(t *testing.T) {
	spec := cluster.DefaultHostSpec("h")
	// Nominal and out-of-range frequencies reduce to the base model.
	for _, f := range []float64{1, 1.2, 0, -0.5} {
		if got, want := HostWattsAtFreq(spec, 0.5, f), HostWatts(spec, 0.5); got != want {
			t.Errorf("freq %v: watts = %v, want base %v", f, got, want)
		}
	}
	// Utilization clamping at reduced frequency.
	if HostWattsAtFreq(spec, -1, 0.6) != HostWattsAtFreq(spec, 0, 0.6) {
		t.Error("negative utilization not clamped")
	}
	if HostWattsAtFreq(spec, 2, 0.6) != HostWattsAtFreq(spec, 1, 0.6) {
		t.Error("oversized utilization not clamped")
	}
	// Lower frequency monotonically lowers power at equal utilization.
	if HostWattsAtFreq(spec, 0.7, 0.6) >= HostWattsAtFreq(spec, 0.7, 0.8) {
		t.Error("power not decreasing with frequency")
	}
	// Invalid exponent falls back as in the base model.
	bad := spec
	bad.PowerExponent = -1
	if got := HostWattsAtFreq(bad, 0.5, 0.6); got <= 0 {
		t.Errorf("invalid exponent: watts = %v", got)
	}
}
