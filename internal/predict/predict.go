// Package predict implements the workload predictor of §III-D: an
// auto-regressive moving-average (ARMA) estimator of the next stability
// interval — how long the workload will stay inside its current workload
// band — with an adaptive mixing weight β driven by recent estimation
// error.
//
// On each completed stability interval measurement CWᵐⱼ the estimator
// produces
//
//	CWᵉⱼ₊₁ = (1−β)·CWᵐⱼ + β·(1/k)·Σᵢ₌₁..k CWᵐⱼ₋ᵢ
//
// where β is derived from the error history: with
//
//	εⱼ = (1−γ)·|CWᵉⱼ − CWᵐⱼ| + γ·(1/k)·Σᵢ₌₁..k εⱼ₋ᵢ
//
// the weight is β = 1 − εⱼ / maxᵢ₌₀..k εⱼ₋ᵢ. When the current estimate
// tracks measurements closely, β is small and the estimator trusts the
// latest measurement; when the estimate has been erratic, β grows and the
// estimator leans on history. The paper uses k = 3 and γ = 0.5.
package predict

import (
	"math"
	"time"

	"github.com/mistralcloud/mistral/internal/stats"
)

// Defaults from §III-D.
const (
	DefaultHistory = 3
	DefaultGamma   = 0.5
)

// Estimator predicts stability intervals. Construct with NewEstimator.
// It is not safe for concurrent use.
type Estimator struct {
	k     int
	gamma float64

	measured []float64 // most recent k measurements, newest last (seconds)
	errors   []float64 // most recent k+1 error values, newest last
	estimate float64   // current prediction for the next interval (seconds)
	beta     float64   // β used for the current prediction
	seeded   bool
}

// NewEstimator returns an estimator with history window k and error blend
// γ; non-positive arguments select the paper's defaults (k=3, γ=0.5).
// initial seeds the first prediction before any measurement is observed.
func NewEstimator(k int, gamma float64, initial time.Duration) *Estimator {
	if k <= 0 {
		k = DefaultHistory
	}
	if gamma <= 0 || gamma >= 1 {
		gamma = DefaultGamma
	}
	return &Estimator{
		k:        k,
		gamma:    gamma,
		estimate: initial.Seconds(),
	}
}

// Predict returns the current estimate of the next stability interval.
func (e *Estimator) Predict() time.Duration {
	return time.Duration(e.estimate * float64(time.Second))
}

// LastBeta returns the β used to produce the current prediction; zero until
// enough history exists.
func (e *Estimator) LastBeta() float64 { return e.beta }

// State is a snapshot of the estimator's internals, taken for decision
// provenance: the β in force and the bounded measurement/error histories
// (seconds, newest last).
type State struct {
	Beta     float64
	Measured []float64
	Errors   []float64
}

// State snapshots the estimator (the slices are copies).
func (e *Estimator) State() State {
	return State{
		Beta:     e.beta,
		Measured: append([]float64(nil), e.measured...),
		Errors:   append([]float64(nil), e.errors...),
	}
}

// PersistState is the estimator's complete mutable state in serializable
// form, used by checkpoint/restore. Unlike State (a provenance view), it
// carries everything Observe folds into: the histories, the current
// estimate and β, and whether a first measurement has seeded the error
// term. The construction parameters k and γ are not included — an
// estimator is restored into a freshly constructed instance with the same
// options.
type PersistState struct {
	Measured []float64 `json:"measured,omitempty"`
	Errors   []float64 `json:"errors,omitempty"`
	Estimate float64   `json:"estimate"`
	Beta     float64   `json:"beta"`
	Seeded   bool      `json:"seeded"`
}

// Persist captures the estimator's complete mutable state.
func (e *Estimator) Persist() PersistState {
	return PersistState{
		Measured: append([]float64(nil), e.measured...),
		Errors:   append([]float64(nil), e.errors...),
		Estimate: e.estimate,
		Beta:     e.beta,
		Seeded:   e.seeded,
	}
}

// Restore overwrites the estimator's mutable state with a captured one;
// subsequent Observe calls continue the sequence exactly as if the
// original estimator had kept running.
func (e *Estimator) Restore(s PersistState) {
	e.measured = append([]float64(nil), s.Measured...)
	e.errors = append([]float64(nil), s.Errors...)
	e.estimate = s.Estimate
	e.beta = s.Beta
	e.seeded = s.Seeded
}

// maxIntervalSec clamps measurements and estimates: a stability interval
// longer than 30 days is a unit artifact (divergent rates, duration
// overflow), not workload information.
const maxIntervalSec = 30 * 24 * 3600

// Observe feeds a completed stability interval measurement and updates the
// prediction for the next one. It returns the new prediction.
func (e *Estimator) Observe(measured time.Duration) time.Duration {
	e.ObserveSeconds(measured.Seconds())
	return e.Predict()
}

// ObserveSeconds is Observe on raw seconds, guarded against the non-finite
// and divergent values noisy measurement pipelines produce: NaN/±Inf inputs
// are treated as missing samples (the estimate is returned unchanged),
// negatives clamp to zero, and absurdly long intervals clamp to 30 days.
// The update itself is then re-checked — if the blend ever produced a
// non-finite estimate it falls back to the clamped measurement, so one bad
// window can never poison every later control-window prediction. It
// returns the new estimate in seconds.
func (e *Estimator) ObserveSeconds(m float64) float64 {
	if math.IsNaN(m) || math.IsInf(m, 0) {
		return e.estimate
	}
	if m < 0 {
		m = 0
	}
	if m > maxIntervalSec {
		m = maxIntervalSec
	}

	// Error of the prediction that was in force for this interval.
	var histErr float64
	if len(e.errors) > 0 {
		histErr = stats.Mean(lastN(e.errors, e.k))
	}
	var cur float64
	if e.seeded {
		cur = abs(e.estimate - m)
	}
	errJ := (1-e.gamma)*cur + e.gamma*histErr

	// β = 1 − εⱼ / max(εⱼ, εⱼ₋₁, ..., εⱼ₋ₖ); a zero maximum (perfect
	// tracking) yields β = 0, trusting the newest measurement entirely.
	maxErr := errJ
	for _, v := range lastN(e.errors, e.k) {
		if v > maxErr {
			maxErr = v
		}
	}
	b := 0.0
	if maxErr > 0 {
		b = 1 - errJ/maxErr
	}
	e.beta = b

	// History average over the k measurements before this one.
	histMean := m
	if hist := lastN(e.measured, e.k); len(hist) > 0 {
		histMean = stats.Mean(hist)
	}

	e.estimate = (1-b)*m + b*histMean
	if math.IsNaN(e.estimate) || math.IsInf(e.estimate, 0) {
		// The blend itself went non-finite (poisoned history): reset to
		// the sane, clamped measurement we just validated.
		e.estimate = m
		e.beta = 0
		errJ = 0
	} else if e.estimate > maxIntervalSec {
		e.estimate = maxIntervalSec
	}
	e.seeded = true

	e.errors = appendBounded(e.errors, errJ, e.k+1)
	e.measured = appendBounded(e.measured, m, e.k)
	return e.estimate
}

// Replay feeds a whole sequence of measured intervals and returns the
// prediction that was in force when each measurement arrived (aligned with
// the input). It supports offline accuracy evaluation à la Figure 6.
func Replay(e *Estimator, measured []time.Duration) []time.Duration {
	out := make([]time.Duration, len(measured))
	for i, m := range measured {
		out[i] = e.Predict()
		e.Observe(m)
	}
	return out
}

func lastN(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	return xs[len(xs)-n:]
}

func appendBounded(xs []float64, v float64, bound int) []float64 {
	xs = append(xs, v)
	if len(xs) > bound {
		copy(xs, xs[len(xs)-bound:])
		xs = xs[:bound]
	}
	return xs
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
