package predict

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/mistralcloud/mistral/internal/stats"
	"github.com/mistralcloud/mistral/internal/workload"
)

func TestEstimatorInitialPrediction(t *testing.T) {
	e := NewEstimator(0, 0, 2*time.Minute)
	if got := e.Predict(); got != 2*time.Minute {
		t.Errorf("initial prediction = %v, want 2m", got)
	}
}

func TestEstimatorConvergesOnConstantSignal(t *testing.T) {
	e := NewEstimator(3, 0.5, time.Minute)
	const iv = 10 * time.Minute
	var pred time.Duration
	for i := 0; i < 20; i++ {
		pred = e.Observe(iv)
	}
	if math.Abs(pred.Seconds()-iv.Seconds()) > 1 {
		t.Errorf("prediction on constant signal = %v, want ~%v", pred, iv)
	}
}

func TestEstimatorBetaBounds(t *testing.T) {
	e := NewEstimator(3, 0.5, time.Minute)
	seq := []time.Duration{5 * time.Minute, time.Minute, 20 * time.Minute, 2 * time.Minute, 2 * time.Minute, 15 * time.Minute}
	for _, m := range seq {
		e.Observe(m)
		if b := e.LastBeta(); b < 0 || b > 1 {
			t.Fatalf("beta = %v out of [0,1]", b)
		}
	}
}

func TestEstimatorTracksLevelShift(t *testing.T) {
	e := NewEstimator(3, 0.5, time.Minute)
	for i := 0; i < 10; i++ {
		e.Observe(2 * time.Minute)
	}
	// Shift to a new level; within a few observations the prediction should
	// move most of the way to it.
	for i := 0; i < 5; i++ {
		e.Observe(12 * time.Minute)
	}
	got := e.Predict().Seconds()
	if got < 8*60 {
		t.Errorf("prediction after level shift = %vs, want > 480s", got)
	}
}

func TestEstimatorNegativeMeasurementClamped(t *testing.T) {
	e := NewEstimator(3, 0.5, time.Minute)
	pred := e.Observe(-5 * time.Minute)
	if pred < 0 {
		t.Errorf("prediction = %v, want non-negative", pred)
	}
}

func TestEstimatorPredictionIsConvexCombination(t *testing.T) {
	// Prediction after Observe must lie between the newest measurement and
	// the mean of the history window.
	prop := func(raw []uint16) bool {
		e := NewEstimator(3, 0.5, time.Minute)
		var hist []float64
		for _, r := range raw {
			m := time.Duration(r) * time.Second
			e.Observe(m)
			histMean := m.Seconds()
			if n := len(hist); n > 0 {
				lo := n - 3
				if lo < 0 {
					lo = 0
				}
				histMean = stats.Mean(hist[lo:])
			}
			p := e.Predict().Seconds()
			loB, hiB := math.Min(m.Seconds(), histMean), math.Max(m.Seconds(), histMean)
			if p < loB-1e-6 || p > hiB+1e-6 {
				return false
			}
			hist = append(hist, m.Seconds())
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReplayAlignment(t *testing.T) {
	e := NewEstimator(3, 0.5, 42*time.Second)
	measured := []time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute}
	preds := Replay(e, measured)
	if len(preds) != 3 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[0] != 42*time.Second {
		t.Errorf("first prediction = %v, want the seed 42s", preds[0])
	}
}

// The paper reports ~14% mean error on its testbed's stability intervals
// (Fig. 6). Our synthetic trace's interval series is heavier-tailed (long
// quiet stretches punctuated by ramps where the band breaks every sample),
// so the achievable one-step error is larger; this test guards against
// regressions that break the adaptive β logic rather than asserting the
// paper's figure.
func TestEstimatorAccuracyOnWorldCupIntervals(t *testing.T) {
	tr := workload.WorldCup(42, 0)
	// Sample at the paper's 2-minute monitoring interval.
	measured := workload.StabilityIntervals(tr, 8, 2*time.Minute)
	if len(measured) < 20 {
		t.Fatalf("only %d intervals", len(measured))
	}
	e := NewEstimator(3, 0.5, measured[0])
	preds := Replay(e, measured)
	var a, p []float64
	for i := range measured {
		if i == 0 {
			continue // seeded point
		}
		a = append(a, measured[i].Seconds())
		p = append(p, preds[i].Seconds())
	}
	nmae := stats.NormMeanAbsError(a, p)
	t.Logf("stability-interval NMAE = %.1f%% over %d intervals", nmae, len(a))
	if nmae > 90 {
		t.Errorf("NMAE = %.1f%%, want under 90%%", nmae)
	}
}

// TestObserveSecondsGuardsNonFinite pins the noisy-pipeline guard: NaN/Inf
// samples are skipped, negatives clamp to zero, divergent magnitudes clamp
// to the 30-day ceiling, and the estimate itself can never go non-finite.
func TestObserveSecondsGuardsNonFinite(t *testing.T) {
	const day = 24 * 3600.0
	cases := []struct {
		name  string
		warm  []float64 // observations before the probe
		probe float64
		want  func(t *testing.T, got float64)
	}{
		{
			name:  "nan input ignored",
			warm:  []float64{100, 100},
			probe: math.NaN(),
			want: func(t *testing.T, got float64) {
				if got != 100 {
					t.Errorf("estimate = %v, want untouched 100", got)
				}
			},
		},
		{
			name:  "positive inf ignored",
			warm:  []float64{250},
			probe: math.Inf(1),
			want: func(t *testing.T, got float64) {
				if got != 250 {
					t.Errorf("estimate = %v, want untouched 250", got)
				}
			},
		},
		{
			name:  "negative inf ignored",
			warm:  []float64{250},
			probe: math.Inf(-1),
			want: func(t *testing.T, got float64) {
				if got != 250 {
					t.Errorf("estimate = %v, want untouched 250", got)
				}
			},
		},
		{
			name:  "negative clamps to zero",
			probe: -5,
			want: func(t *testing.T, got float64) {
				if got != 0 {
					t.Errorf("estimate = %v, want 0", got)
				}
			},
		},
		{
			name:  "divergent magnitude clamps to 30 days",
			probe: 1e300,
			want: func(t *testing.T, got float64) {
				if got > 30*day {
					t.Errorf("estimate = %v, want ≤ 30 days", got)
				}
			},
		},
		{
			name:  "max float does not overflow the blend",
			warm:  []float64{1e308, 1e308},
			probe: 1e308,
			want: func(t *testing.T, got float64) {
				if math.IsNaN(got) || math.IsInf(got, 0) || got > 30*day {
					t.Errorf("estimate = %v, want finite ≤ 30 days", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEstimator(0, 0, 100*time.Second)
			for _, w := range tc.warm {
				e.ObserveSeconds(w)
			}
			tc.want(t, e.ObserveSeconds(tc.probe))
			if got := e.Predict(); got < 0 {
				t.Errorf("Predict() = %v, want non-negative", got)
			}
		})
	}
}

// TestObserveSecondsRecoversAfterGarbage feeds a garbage burst and checks
// the estimator still converges on the clean signal that follows.
func TestObserveSecondsRecoversAfterGarbage(t *testing.T) {
	e := NewEstimator(0, 0, 100*time.Second)
	for _, g := range []float64{math.NaN(), math.Inf(1), -1e300, 1e300, math.NaN()} {
		e.ObserveSeconds(g)
	}
	var last float64
	for i := 0; i < 40; i++ {
		last = e.ObserveSeconds(120)
	}
	if math.Abs(last-120) > 1 {
		t.Errorf("estimate after recovery = %v, want ≈120", last)
	}
}
