package mistral_test

import (
	"testing"
	"time"

	"github.com/mistralcloud/mistral"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := mistral.NewSystem(mistral.SystemOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Apps()); got != 2 {
		t.Errorf("apps = %d, want 2", got)
	}
	if got := len(sys.Catalog().HostNames()); got != 4 {
		t.Errorf("hosts = %d, want 4", got)
	}
	if !sys.InitialConfig().IsCandidate(sys.Catalog()) {
		t.Error("initial config invalid")
	}
	if sys.Workloads() == nil {
		t.Error("no workloads")
	}
	if sys.Utility().MonitoringInterval != 2*time.Minute {
		t.Errorf("monitoring interval = %v", sys.Utility().MonitoringInterval)
	}
}

func TestNewSystemCustomApps(t *testing.T) {
	a := mistral.RUBiS("shop")
	sys, err := mistral.NewSystem(mistral.SystemOptions{
		Apps:  []*mistral.AppSpec{a},
		Hosts: []mistral.HostSpec{mistral.DefaultHostSpec("alpha"), mistral.DefaultHostSpec("beta")},
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Catalog().HostNames(); len(got) != 2 || got[0] != "alpha" {
		t.Errorf("hosts = %v", got)
	}
	if _, ok := sys.Utility().Apps["shop"]; !ok {
		t.Error("custom app missing from utility params")
	}
}

func TestSystemIdealConfiguration(t *testing.T) {
	sys, err := mistral.NewSystem(mistral.SystemOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	low, err := sys.IdealConfiguration(map[string]float64{"rubis1": 5, "rubis2": 5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := sys.IdealConfiguration(map[string]float64{"rubis1": 90, "rubis2": 90})
	if err != nil {
		t.Fatal(err)
	}
	if low.Config.NumActiveHosts() > high.Config.NumActiveHosts() {
		t.Errorf("low-load ideal uses %d hosts, high-load %d",
			low.Config.NumActiveHosts(), high.Config.NumActiveHosts())
	}
}

func TestSystemReplayQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario replay")
	}
	sys, err := mistral.NewSystem(mistral.SystemOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := sys.NewMistral(mistral.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ReplayFor(ctrl, nil, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 15 {
		t.Errorf("windows = %d, want 15", len(res.Windows))
	}
	if res.Strategy != "Mistral" {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestSystemBaselines(t *testing.T) {
	sys, err := mistral.NewSystem(mistral.SystemOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (mistral.Decider, error){
		sys.NewPerfPwrBaseline, sys.NewPerfCostBaseline, sys.NewPwrCostBaseline,
	} {
		d, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() == "" {
			t.Error("baseline with empty name")
		}
	}
}

func TestPaperHelpers(t *testing.T) {
	if got := mistral.PaperCostTable(); len(got.Keys()) == 0 {
		t.Error("empty cost table")
	}
	util := mistral.PaperUtility([]string{"x"})
	if err := util.Validate(); err != nil {
		t.Errorf("paper utility invalid: %v", err)
	}
	set := mistral.PaperWorkloads(1, []string{"a", "b"})
	if len(set) != 2 {
		t.Errorf("workload set = %d", len(set))
	}
}
