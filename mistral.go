// Package mistral is a Go reproduction of "Mistral: Dynamically Managing
// Power, Performance, and Adaptation Cost in Cloud Infrastructures"
// (Jung, Hiltunen, Joshi, Schlichting, Pu — ICDCS 2010).
//
// Mistral is a utility-driven controller for consolidated, virtualized
// clusters. It jointly optimizes steady-state application performance
// (mean response time against per-application targets), steady-state power
// consumption, and the transient cost of adaptation actions — including
// the cost of its own decision procedure. Adaptation plans are sequences
// of six actions (CPU capacity tuning, replica addition/removal, VM live
// migration, host power cycling) found by an A* search whose admissible
// heuristic is the "ideal utility" of a performance/power-only optimizer,
// with a Self-Aware variant that prunes its own search when the cost of
// deciding outgrows the expected benefit.
//
// Because the paper's physical testbed (Xen hosts, RUBiS, power meters,
// proprietary traces) is not reproducible directly, this module also
// implements every substrate in Go: a discrete-event request-level
// simulator of multi-tier applications, a layered-queueing-network
// performance model, a utilization-based power model, workload-trace
// synthesis, adaptation-cost tables, and a virtual testbed that executes
// adaptation plans with their measured transient costs. See DESIGN.md for
// the substitution inventory and EXPERIMENTS.md for paper-vs-measured
// results for every table and figure.
//
// # Quick start
//
//	sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 2})
//	if err != nil { ... }
//	ctrl, err := sys.NewMistral(mistral.ControllerOptions{})
//	if err != nil { ... }
//	result, err := sys.Replay(ctrl, nil) // nil: the paper's Fig. 4 traces
//	if err != nil { ... }
//	fmt.Printf("cumulative utility: %.1f\n", result.CumUtility)
//
// The experiment drivers that regenerate the paper's tables and figures
// live in this package as RunFig1 … RunTable1; the cmd/mistral-exp binary
// renders them all.
package mistral

import (
	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/utility"
	"github.com/mistralcloud/mistral/internal/workload"
)

// Infrastructure model types.
type (
	// HostSpec describes a physical machine (capacity, memory, power
	// model, boot/shutdown costs).
	HostSpec = cluster.HostSpec
	// VMSpec describes a virtual machine hosting one tier replica.
	VMSpec = cluster.VMSpec
	// VMID identifies a VM.
	VMID = cluster.VMID
	// Catalog is the immutable description of hosts and VMs under
	// management.
	Catalog = cluster.Catalog
	// Config assigns host power states, VM placements, and CPU
	// allocations.
	Config = cluster.Config
	// Action is one adaptation step.
	Action = cluster.Action
	// ActionKind enumerates the six adaptation actions.
	ActionKind = cluster.ActionKind
	// ActionSpace restricts the actions a controller may use.
	ActionSpace = cluster.ActionSpace
)

// Adaptation action kinds (§III-C).
const (
	ActionIncreaseCPU   = cluster.ActionIncreaseCPU
	ActionDecreaseCPU   = cluster.ActionDecreaseCPU
	ActionAddReplica    = cluster.ActionAddReplica
	ActionRemoveReplica = cluster.ActionRemoveReplica
	ActionMigrate       = cluster.ActionMigrate
	ActionStartHost     = cluster.ActionStartHost
	ActionStopHost      = cluster.ActionStopHost
	// ActionSetDVFS is the §VI future-work extension: host frequency
	// scaling as a lowest-level-controller action.
	ActionSetDVFS = cluster.ActionSetDVFS
	// ActionWANMigrate is the §VI future-work extension: VM migration
	// between data centers, owned by the 3rd hierarchy level.
	ActionWANMigrate = cluster.ActionWANMigrate
)

// Application model types.
type (
	// AppSpec models a multi-tier application with a transaction mix.
	AppSpec = app.Spec
	// TierSpec is one tier of an application.
	TierSpec = app.TierSpec
	// TxnSpec is one transaction type.
	TxnSpec = app.TxnSpec
)

// Utility model types (§II-B).
type (
	// UtilityParams prices performance and power (Eqs. 1–3).
	UtilityParams = utility.Params
	// AppUtility is one application's performance objective.
	AppUtility = utility.AppParams
)

// Workload types.
type (
	// Trace is a request-rate time series.
	Trace = workload.Trace
	// WorkloadSet maps application names to traces.
	WorkloadSet = workload.Set
)

// Cost model types (§III-C).
type (
	// CostTable holds per-action transient cost entries indexed by
	// workload.
	CostTable = cost.Table
	// CostEntry is one measured cost point.
	CostEntry = cost.Entry
)

// Controller types (§IV).
type (
	// SearchOptions tunes the A* adaptation search (naive or Self-Aware).
	SearchOptions = core.SearchOptions
	// Ideal is the Perf-Pwr optimizer's output: the best
	// performance/power configuration ignoring transient costs.
	Ideal = core.Ideal
	// Decision is a strategy's output for one control opportunity.
	Decision = scenario.Decision
	// Decider is a control strategy (Mistral or a baseline).
	Decider = scenario.Decider
	// RunResult is a completed scenario replay.
	RunResult = scenario.Result
	// WindowLog is one monitoring window's record within a RunResult.
	WindowLog = scenario.WindowLog
	// MistralController is the hierarchical Mistral strategy.
	MistralController = strategy.Mistral
)

// Testbed types.
type (
	// Testbed executes adaptation plans against a virtual cluster and
	// measures response times, utilization, and power.
	Testbed = testbed.Testbed
	// TestbedOptions tunes testbed fidelity and noise.
	TestbedOptions = testbed.Options
	// TestbedMode selects analytic or request-level fidelity.
	TestbedMode = testbed.Mode
)

// Testbed fidelity modes.
const (
	ModeAnalytic     = testbed.ModeAnalytic
	ModeRequestLevel = testbed.ModeRequestLevel
)

// RUBiS returns the paper's three-tier auction application with the
// browse-only transaction mix.
func RUBiS(name string) *AppSpec { return app.RUBiS(name) }

// DefaultHostSpec returns a host matching the paper's testbed machines.
func DefaultHostSpec(name string) HostSpec { return cluster.DefaultHostSpec(name) }

// PaperCostTable returns the adaptation-cost tables anchored to Fig. 7 and
// §V-B.
func PaperCostTable() *CostTable { return cost.PaperTable() }

// PaperUtility returns the evaluation's utility settings (§V-A): 2-minute
// monitoring interval, $0.01 per watt-interval, 400 ms targets with the
// Fig. 3 reward/penalty curves.
func PaperUtility(appNames []string) *UtilityParams { return utility.PaperParams(appNames) }

// PaperWorkloads returns the Fig. 4 workload set for the given application
// names (World Cup shapes for the first two, HP shapes for the next two).
func PaperWorkloads(seed uint64, appNames []string) WorkloadSet {
	return workload.PaperWorkloads(seed, appNames)
}

// Experiment re-exports: each Run* regenerates one of the paper's tables
// or figures; see EXPERIMENTS.md for expected outputs.
type (
	// ExperimentTable is a renderable tabular experiment result.
	ExperimentTable = experiments.Table
	// Lab is an assembled reproduction environment.
	Lab = experiments.Lab
	// LabOptions configures a Lab.
	LabOptions = experiments.LabOptions
)

// NewLab assembles a reproduction environment (catalog, calibrated
// applications, workloads, utility and cost models).
func NewLab(opts LabOptions) (*Lab, error) { return experiments.NewLab(opts) }

// RunFig1 regenerates Fig. 1 (live-migration transients).
func RunFig1(seed uint64) (*experiments.Fig1Result, error) {
	return experiments.Fig1MigrationCost(seed)
}

// RunFig3 regenerates Fig. 3 (the performance utility function).
func RunFig3() []experiments.Fig3Point { return experiments.Fig3UtilityFunction() }

// RunFig4 regenerates Fig. 4 (the application workloads).
func RunFig4(seed uint64) *experiments.Fig4Result { return experiments.Fig4Workloads(seed) }

// RunFig5 regenerates Fig. 5 (model validation against the request-level
// testbed).
func RunFig5(seed uint64) (*experiments.Fig5Result, error) {
	return experiments.Fig5ModelAccuracy(seed)
}

// RunFig6 regenerates Fig. 6 (stability-interval estimation accuracy).
func RunFig6(seed uint64) *experiments.Fig6Result {
	return experiments.Fig6StabilityEstimation(seed)
}

// RunFig7 regenerates Fig. 7 (the adaptation-cost tables).
func RunFig7() []experiments.Fig7Row { return experiments.Fig7AdaptationCosts() }

// RunFig7Measured reruns the §III-C offline cost-measurement campaign on
// the request-level testbed.
func RunFig7Measured(seed uint64, trials int) ([]experiments.Fig7Row, error) {
	return experiments.Fig7MeasuredCampaign(seed, trials, nil)
}

// MeasureCostTable runs the full offline campaign and assembles a cost
// table usable anywhere PaperCostTable is: the closed measure-offline /
// consult-at-runtime loop of §III-C.
func MeasureCostTable(seed uint64, trials int) (*CostTable, error) {
	return experiments.MeasuredCostTable(seed, trials, nil)
}

// RunFig89 regenerates Figs. 8–9 (the four-strategy comparison).
func RunFig89(seed uint64) (*experiments.Fig89Result, error) {
	return experiments.Fig89StrategyComparison(seed)
}

// RunFig10 regenerates Fig. 10 (the cost of the search itself).
func RunFig10(seed uint64) (*experiments.Fig10Result, error) {
	return experiments.Fig10SearchCost(seed)
}

// RunTable1 regenerates Table I (scalability of the search).
func RunTable1(seed uint64, opts experiments.Table1Options) (*experiments.Table1Result, error) {
	return experiments.Table1Scalability(seed, opts)
}

// RunFaultSweep runs the robustness study beyond the paper: the four
// strategies replayed under seeded fault injection (failed and delayed
// actions, host crashes, sensor dropouts) at each configured rate.
func RunFaultSweep(opts experiments.FaultSweepOptions) (*experiments.FaultSweepResult, error) {
	return experiments.FaultSweep(opts)
}

// RunChaosSweep runs the transactional-robustness study: Mistral replayed
// under the combined chaos profile (simultaneous crashes, failures, and
// delays, mostly non-retryable) with the admission guard enabled, under
// both execution policies, asserting the safety invariants every window.
func RunChaosSweep(opts experiments.ChaosSweepOptions) (*experiments.ChaosSweepResult, error) {
	return experiments.ChaosSweep(opts)
}

// RunBenchSearch measures the decide hot path (per-window cache boundary,
// Perf-Pwr ideal, Self-Aware A* search) over the paper's workload scenario
// and returns the perf snapshot emitted as BENCH_search.json.
func RunBenchSearch(seed uint64, opts experiments.BenchOptions) (*experiments.BenchResult, error) {
	return experiments.BenchSearch(seed, opts)
}
