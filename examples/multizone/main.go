// Command multizone demonstrates the §VI future-work extension: two
// applications spread across two data centers, managed by a three-level
// Mistral hierarchy. Level 1 tunes CPU/DVFS and migrates within each data
// center, level 2 reshapes placements and host power across the cluster,
// and level 3 — waking only on large workload swings and planning over
// half-hour windows — may move VMs between data centers over the WAN,
// paying minutes-long migrations and a per-hop cross-zone latency penalty.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multizone:", err)
		os.Exit(1)
	}
}

func run() error {
	lab, err := experiments.NewLab(experiments.LabOptions{
		NumApps: 2,
		Zones:   2,
		Seed:    42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("zones: %v\n", lab.Cat.Zones())
	for _, z := range lab.Cat.Zones() {
		fmt.Printf("  %s: %v\n", z, lab.Cat.HostsInZone(z))
	}

	tb, err := lab.NewTestbed()
	if err != nil {
		return err
	}
	eval, err := lab.NewEvaluator()
	if err != nil {
		return err
	}
	ctrl, err := strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         lab.HostGroups(),
		MonitoringInterval: lab.Util.MonitoringInterval,
	})
	if err != nil {
		return err
	}

	fmt.Println("\nReplaying 3 hours across two data centers...")
	res, err := scenario.Run(tb, ctrl, scenario.RunConfig{
		Traces:   lab.Traces,
		Duration: 3 * time.Hour,
		Interval: lab.Util.MonitoringInterval,
		Utility:  lab.Util,
	})
	if err != nil {
		return err
	}

	for i, w := range res.Windows {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("t=%-8s rates=[%5.1f %5.1f]  watts=%4.0f  actions=%2d  cum=$%.1f\n",
			w.Time, w.Rates["rubis1"], w.Rates["rubis2"], w.Watts, w.Actions, w.CumUtility)
	}

	l1, l2 := ctrl.Stats()
	l3 := ctrl.StatsL3()
	fmt.Printf("\nlevel 1 (per-DC):    %3d invocations, mean search %v\n", l1.Invocations, l1.MeanSearch())
	fmt.Printf("level 2 (cluster):   %3d invocations, mean search %v\n", l2.Invocations, l2.MeanSearch())
	fmt.Printf("level 3 (cross-DC):  %3d invocations, mean search %v\n", l3.Invocations, l3.MeanSearch())
	fmt.Printf("cumulative utility:  $%.1f (%d actions)\n", res.CumUtility, res.TotalActions)
	fmt.Println("\nNote the structural cost of zone isolation: each application can draw on")
	fmt.Println("only half the cluster without paying WAN latency and minutes-long")
	fmt.Println("wan-migrate actions (kind", mistral.ActionWANMigrate, "), so flash crowds that a")
	fmt.Println("single-zone cluster absorbs (see examples/consolidation) cost real utility here.")
	return nil
}
