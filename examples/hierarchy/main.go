// Command hierarchy runs the paper's largest scenario: four RUBiS
// applications (20 VMs) on eight hosts under a two-level controller
// hierarchy — two 1st-level controllers with zero-width bands tuning CPU
// and migrating within their own rack, and a 2nd-level controller with an
// 8 req/s band wielding the full action set across the cluster.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/mistralcloud/mistral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 4, Seed: 42})
	if err != nil {
		return err
	}

	// Partition the eight hosts into two "racks" of four.
	hosts := sys.Catalog().HostNames()
	ctrl, err := sys.NewMistral(mistral.ControllerOptions{
		HostGroups: [][]string{hosts[:4], hosts[4:]},
		L2Band:     8,
	})
	if err != nil {
		return err
	}

	fmt.Println("Replaying 2 hours of the 4-app scenario under the two-level hierarchy...")
	res, err := sys.ReplayFor(ctrl, nil, 2*time.Hour)
	if err != nil {
		return err
	}

	for i, w := range res.Windows {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("t=%-8s rates=[%5.1f %5.1f %5.1f %5.1f]  watts=%4.0f  actions=%2d  cum=$%.1f\n",
			w.Time, w.Rates["rubis1"], w.Rates["rubis2"], w.Rates["rubis3"], w.Rates["rubis4"],
			w.Watts, w.Actions, w.CumUtility)
	}

	l1, l2 := ctrl.Stats()
	fmt.Printf("\nlevel-1 controllers: %d invocations, mean search %v\n", l1.Invocations, l1.MeanSearch())
	fmt.Printf("level-2 controller:  %d invocations, mean search %v\n", l2.Invocations, l2.MeanSearch())
	fmt.Printf("cumulative utility:  $%.1f (%d actions)\n", res.CumUtility, res.TotalActions)
	fmt.Println("\nThe 1st level runs every monitoring interval but only produces quick, local")
	fmt.Println("refinements; the 2nd level wakes only on band escapes and reshapes the cluster.")
	return nil
}
