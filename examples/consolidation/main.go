// Command consolidation contrasts Mistral against the cost-blind Perf-Pwr
// baseline on the paper's 2-application World Cup day: both consolidate
// servers at low load, but only Mistral weighs each adaptation's transient
// cost against its benefit over the predicted stability interval.
package main

import (
	"fmt"
	"os"

	"github.com/mistralcloud/mistral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consolidation:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Replaying the full 15:00-21:30 scenario under Mistral and Perf-Pwr...")

	results := make(map[string]*mistral.RunResult, 2)
	for _, which := range []string{"Mistral", "Perf-Pwr"} {
		// A fresh system per strategy: identical workloads and noise.
		sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 2, Seed: 42})
		if err != nil {
			return err
		}
		var d mistral.Decider
		switch which {
		case "Mistral":
			d, err = sys.NewMistral(mistral.ControllerOptions{})
		default:
			d, err = sys.NewPerfPwrBaseline()
		}
		if err != nil {
			return err
		}
		res, err := sys.Replay(d, nil)
		if err != nil {
			return err
		}
		results[which] = res
	}

	fmt.Printf("\n%-10s  %12s  %9s  %12s  %11s\n", "strategy", "cum.utility", "actions", "violations", "mean watts")
	for _, which := range []string{"Mistral", "Perf-Pwr"} {
		res := results[which]
		var watts float64
		for _, w := range res.Windows {
			watts += w.Watts
		}
		watts /= float64(len(res.Windows))
		fmt.Printf("%-10s  %12.1f  %9d  %12d  %11.0f\n",
			which, res.CumUtility, res.TotalActions, res.TargetViolations, watts)
	}

	m, p := results["Mistral"], results["Perf-Pwr"]
	fmt.Printf("\nMistral accrued $%.1f more utility than Perf-Pwr with %d fewer target violations.\n",
		m.CumUtility-p.CumUtility, p.TargetViolations-m.TargetViolations)
	fmt.Println("Ignoring transient adaptation costs makes Perf-Pwr fire disruptive migrations on")
	fmt.Println("every workload wiggle, paying penalties its steady-state savings never recoup;")
	fmt.Println("Mistral prefers cheap CPU retunes and reshapes the cluster only when the")
	fmt.Println("predicted stability interval lets a migration pay for itself (Fig. 9).")
	return nil
}
