// Command quickstart runs the smallest useful Mistral setup: two RUBiS
// applications on four hosts, driven by the paper's workloads for one hour
// under the hierarchical Mistral controller, printing per-window metrics
// and the accrued utility.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/mistralcloud/mistral"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 2, Seed: 42})
	if err != nil {
		return err
	}
	ctrl, err := sys.NewMistral(mistral.ControllerOptions{})
	if err != nil {
		return err
	}

	fmt.Println("Replaying one hour of the paper's workloads under Mistral...")
	res, err := sys.ReplayFor(ctrl, nil, time.Hour)
	if err != nil {
		return err
	}

	fmt.Printf("%-6s  %-7s  %-7s  %-9s  %-9s  %-6s  %-7s\n",
		"window", "rubis1", "rubis2", "rt1(ms)", "rt2(ms)", "watts", "utility")
	for _, w := range res.Windows {
		fmt.Printf("%-6s  %7.1f  %7.1f  %9.0f  %9.0f  %6.0f  %7.2f\n",
			w.Time, w.Rates["rubis1"], w.Rates["rubis2"],
			w.RTSec["rubis1"]*1000, w.RTSec["rubis2"]*1000, w.Watts, w.Utility)
	}
	fmt.Printf("\ncumulative utility: $%.2f over %d windows (%d adaptation actions, %d decision runs)\n",
		res.CumUtility, len(res.Windows), res.TotalActions, res.Invocations)
	return nil
}
