// Command costexplorer inspects the transient adaptation-cost machinery:
// it prints the paper-anchored cost tables (Fig. 7), then reruns the
// §III-C offline measurement campaign against the request-level simulator
// and prints the measured counterpart, so the two can be compared.
package main

import (
	"fmt"
	"os"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "costexplorer:", err)
		os.Exit(1)
	}
}

func run() error {
	tbl := experiments.Fig7Table(mistral.RunFig7())
	fmt.Println(tbl.ASCII())

	fmt.Println("Rerunning the offline measurement campaign on the request-level testbed")
	fmt.Println("(random placements, 40% caps, 1-minute warm-up, one action per trial)...")
	fmt.Println()
	rows, err := mistral.RunFig7Measured(42, 2)
	if err != nil {
		return err
	}
	t := experiments.Fig7Table(rows)
	t.Title = "Measured campaign (request-level testbed)"
	fmt.Println(t.ASCII())

	fmt.Println("Shapes to compare with Fig. 7: costs grow with concurrent sessions, and")
	fmt.Println("database migrations cost more than application-tier ones, which cost more")
	fmt.Println("than web-tier ones.")
	return nil
}
