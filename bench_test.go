// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V). Each benchmark runs the corresponding experiment end to end and
// reports the headline quantities as custom metrics, so
//
//	go test -bench . -benchmem
//
// doubles as the reproduction harness. Wall-clock costs vary from
// milliseconds (Fig. 3) to minutes (Fig. 8–10, Table I); use
// -bench 'Fig[1-7]' for the quick subset.
package mistral_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/mistralcloud/mistral"
	"github.com/mistralcloud/mistral/internal/cluster"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/obs"
)

const benchSeed = 42

// benchRegistry installs a process-default metrics registry for the
// benchmark's duration and returns it, so searches and evaluators
// constructed inside the experiment record into it.
func benchRegistry(b *testing.B) *obs.Registry {
	b.Helper()
	reg := obs.NewRegistry()
	obs.SetDefault(&obs.Observer{Metrics: reg})
	b.Cleanup(func() { obs.SetDefault(nil) })
	return reg
}

// reportSearchMetrics derives expansions/s and the evaluator cache hit rate
// from the registry accumulated over the benchmark run.
func reportSearchMetrics(b *testing.B, reg *obs.Registry) {
	b.Helper()
	exp := float64(reg.CounterValue("search_expansions_total"))
	if h := reg.Histogram("search_time_ms", nil).Snapshot(); h.Sum > 0 {
		b.ReportMetric(exp/(h.Sum/1000), "expansions/s")
	}
	hits := float64(reg.CounterValue("eval_cache_hits_total"))
	misses := float64(reg.CounterValue("eval_cache_misses_total"))
	if hits+misses > 0 {
		b.ReportMetric(100*hits/(hits+misses), "cache_hit_%")
	}
}

// BenchmarkFig1MigrationCost regenerates Fig. 1: power and response-time
// transients of a single live migration at 100/400/800 concurrent
// sessions on the request-level testbed.
func BenchmarkFig1MigrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFig1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Series[len(r.Series)-1]
		b.ReportMetric(last.PeakDeltaWattPct(), "peakΔwatt%@800")
		b.ReportMetric(last.PeakDeltaRTPct(), "peakΔrt%@800")
	}
}

// BenchmarkFig3UtilityFunction regenerates Fig. 3's reward/penalty curves.
func BenchmarkFig3UtilityFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := mistral.RunFig3()
		b.ReportMetric(points[len(points)-1].Reward, "reward@100")
		b.ReportMetric(points[0].Penalty, "penalty@0")
	}
}

// BenchmarkFig4Workloads regenerates Fig. 4's four application workloads.
func BenchmarkFig4Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mistral.RunFig4(benchSeed)
		var peak float64
		for _, rates := range r.Rates {
			for _, v := range rates {
				if v > peak {
					peak = v
				}
			}
		}
		b.ReportMetric(peak, "peak_req/s")
	}
}

// BenchmarkFig5ModelAccuracy regenerates Fig. 5: LQN/power-model
// predictions against request-level measurements during the flash crowd
// (the paper reports ≈5% error).
func BenchmarkFig5ModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFig5(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RTErrPct, "rt_err%")
		b.ReportMetric(r.UtilErrPct, "util_err%")
		b.ReportMetric(r.WattsErrPct, "watts_err%")
	}
}

// BenchmarkFig6StabilityEstimation regenerates Fig. 6: the adaptive ARMA
// estimator against measured stability intervals.
func BenchmarkFig6StabilityEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mistral.RunFig6(benchSeed)
		b.ReportMetric(r.ErrorPct, "nmae%")
		b.ReportMetric(float64(len(r.MeasuredMS)), "intervals")
	}
}

// BenchmarkFig7AdaptationCosts regenerates Fig. 7's cost tables.
func BenchmarkFig7AdaptationCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := mistral.RunFig7()
		var peak float64
		for _, r := range rows {
			if r.DelayMS > peak {
				peak = r.DelayMS
			}
		}
		b.ReportMetric(peak, "max_delay_ms")
	}
}

// BenchmarkFig7MeasuredCampaign reruns the §III-C offline measurement
// campaign on the request-level testbed (the measured counterpart of the
// Fig. 7 tables).
func BenchmarkFig7MeasuredCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := mistral.RunFig7Measured(benchSeed, 1)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.DeltaRTMS > worst {
				worst = r.DeltaRTMS
			}
		}
		b.ReportMetric(worst, "max_Δrt_ms")
	}
}

// BenchmarkFig8StrategyComparison and BenchmarkFig9CumulativeUtility share
// the same replay: the 2-application day under all four strategies. Fig. 8
// reports response-time/power series quality; Fig. 9 the cumulative
// utility ordering (paper: Mistral 152.3 > Pwr-Cost 93.9 > Perf-Cost 26.3
// > Perf-Pwr −47.1).
func BenchmarkFig8StrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFig89(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		res := r.Results[experiments.StrategyMistral]
		b.ReportMetric(float64(res.TargetViolations), "mistral_violations")
		b.ReportMetric(float64(res.TotalActions), "mistral_actions")
	}
}

// BenchmarkFig9CumulativeUtility reports the cumulative utilities of the
// four strategies.
func BenchmarkFig9CumulativeUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFig89(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		cum := r.CumUtility()
		b.ReportMetric(cum[experiments.StrategyMistral], "mistral_$")
		b.ReportMetric(cum[experiments.StrategyPwrCost], "pwrcost_$")
		b.ReportMetric(cum[experiments.StrategyPerfCost], "perfcost_$")
		b.ReportMetric(cum[experiments.StrategyPerfPwr], "perfpwr_$")
	}
}

// BenchmarkFig10SearchCost regenerates Fig. 10: the decision procedure's
// own power and duration, naive vs Self-Aware (paper: ≈24 s vs ≈5.5 s,
// utilities 135.3 vs 152.3).
func BenchmarkFig10SearchCost(b *testing.B) {
	reg := benchRegistry(b)
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFig10(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		aware, naive := r.MeanSearch()
		b.ReportMetric(aware.Seconds(), "aware_search_s")
		b.ReportMetric(naive.Seconds(), "naive_search_s")
		b.ReportMetric(r.SelfAware.CumUtility, "aware_$")
		b.ReportMetric(r.Naive.CumUtility, "naive_$")
	}
	reportSearchMetrics(b, reg)
}

// BenchmarkSearchWorkers measures the adaptation search on the Table I
// 4-application instance at several evaluation-concurrency settings. The
// decisions are byte-identical at every setting (see the determinism
// tests); only the wall clock moves — expansions/s is the real-time search
// throughput, which the parallel child evaluation and frontier prewarm
// should scale well past the serial baseline.
func BenchmarkSearchWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			lab, err := experiments.NewLab(experiments.LabOptions{NumApps: 4, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			eval, err := lab.NewEvaluator()
			if err != nil {
				b.Fatal(err)
			}
			rates := make(map[string]float64, len(lab.AppNames))
			for _, n := range lab.AppNames {
				rates[n] = 60 // high load: the ideal is far from the 40% default
			}
			ideal, err := core.PerfPwr(eval, rates, core.PerfPwrOptions{Workers: w})
			if err != nil {
				b.Fatal(err)
			}
			s := core.NewSearcher(eval, core.SearchOptions{SelfAware: true, MaxExpansions: 2500, Workers: w})
			var expanded int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eval.ResetCache()
				res, err := s.Search(lab.Initial, rates, 2*time.Hour, ideal, core.ExpectedUtility{}, cluster.ActionSpace{})
				if err != nil {
					b.Fatal(err)
				}
				expanded += res.Expanded
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(expanded)/sec, "expansions/s")
			}
		})
	}
}

// BenchmarkTable1Scalability regenerates Table I over 2/3/4 applications
// on the full 6.5 h day (the naive searches are capped for tractability),
// once on the serial evaluation path and once on the default worker pool —
// the reported table is identical; only wall-clock time differs.
func BenchmarkTable1Scalability(b *testing.B) {
	for _, leg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(leg.name, func(b *testing.B) {
			reg := benchRegistry(b)
			for i := 0; i < b.N; i++ {
				r, err := mistral.RunTable1(benchSeed, experiments.Table1Options{Workers: leg.workers})
				if err != nil {
					b.Fatal(err)
				}
				first := r.Scenarios[0]
				last := r.Scenarios[len(r.Scenarios)-1]
				b.ReportMetric(first.SelfAwareMean.Seconds(), "aware_s_2app")
				b.ReportMetric(last.SelfAwareMean.Seconds(), "aware_s_4app")
				b.ReportMetric(first.NaiveMean.Seconds(), "naive_s_2app")
				b.ReportMetric(last.NaiveMean.Seconds(), "naive_s_4app")
			}
			reportSearchMetrics(b, reg)
		})
	}
}

// Ablation benches beyond the paper (see DESIGN.md §6).

// BenchmarkAblationPruneFraction varies the Self-Aware beam width.
func BenchmarkAblationPruneFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPruneFraction(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r {
			b.ReportMetric(row.Utility, "util@"+row.Label)
		}
	}
}

// BenchmarkAblationBandWidth varies the 2nd-level workload band.
func BenchmarkAblationBandWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBandWidth(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r {
			b.ReportMetric(row.Utility, "util@"+row.Label)
		}
	}
}

// BenchmarkAblationARMA compares the adaptive-β estimator against fixed-β
// variants on the stability-interval series.
func BenchmarkAblationARMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationARMA(benchSeed)
		for _, row := range rows {
			b.ReportMetric(row.ErrorPct, "nmae%@"+row.Label)
		}
	}
}

// BenchmarkAblationDVFS contrasts Mistral with and without the DVFS
// extension (the paper's §VI "complementary technique").
func BenchmarkAblationDVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationDVFS(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.Utility, "util@"+row.Label)
		}
	}
}

// BenchmarkAblationMultiZone quantifies the structural cost of splitting
// the cluster across two data centers (the §VI WAN extension).
func BenchmarkAblationMultiZone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMultiZone(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(row.Utility, "util@"+row.Label)
		}
	}
}

// BenchmarkFaultSweep replays the robustness study beyond the paper: the
// four strategies under seeded fault injection at 0/15/30% action-failure
// rates. The reported metrics track how much utility Mistral preserves as
// the environment turns hostile, and how much degradation bookkeeping the
// control loop absorbed without aborting.
func BenchmarkFaultSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mistral.RunFaultSweep(experiments.FaultSweepOptions{
			Seed:     benchSeed,
			Rates:    []float64{0, 0.15, 0.30},
			Duration: 2 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		clean := r.CumUtility(0)
		hostile := r.CumUtility(len(r.Rates) - 1)
		b.ReportMetric(clean[experiments.StrategyMistral], "mistral_clean_$")
		b.ReportMetric(hostile[experiments.StrategyMistral], "mistral_30%_$")
		b.ReportMetric(hostile[experiments.StrategyPerfPwr], "perfpwr_30%_$")
		cells := r.Cells[experiments.StrategyMistral]
		worst := cells[len(cells)-1].Result
		b.ReportMetric(float64(worst.DegradedWindows), "mistral_30%_degraded")
		b.ReportMetric(float64(worst.Retries), "mistral_30%_retries")
	}
}

// BenchmarkAblationFidelity compares analytic and request-level testbed
// measurements of the same steady configuration.
func BenchmarkAblationFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationFidelity(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RTGapPct, "rt_gap%")
		b.ReportMetric(r.WattsGapPct, "watts_gap%")
	}
}
