package mistral

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral/internal/app"
	"github.com/mistralcloud/mistral/internal/core"
	"github.com/mistralcloud/mistral/internal/cost"
	"github.com/mistralcloud/mistral/internal/experiments"
	"github.com/mistralcloud/mistral/internal/lqn"
	"github.com/mistralcloud/mistral/internal/scenario"
	"github.com/mistralcloud/mistral/internal/strategy"
	"github.com/mistralcloud/mistral/internal/testbed"
	"github.com/mistralcloud/mistral/internal/workload"
)

// SystemOptions configures NewSystem. The zero value builds the paper's
// 2-application evaluation setup.
type SystemOptions struct {
	// Apps are the managed applications; default: NumApps RUBiS instances
	// named rubis1..N, calibrated to the paper's 400 ms @ 50 req/s
	// operating point.
	Apps []*AppSpec
	// NumApps is used when Apps is nil (default 2).
	NumApps int
	// Hosts are the physical machines; default: 2 per application with the
	// paper's host spec.
	Hosts []HostSpec
	// Seed drives workload synthesis, noise, and simulation.
	Seed uint64
	// Mode selects testbed fidelity (default analytic).
	Mode TestbedMode
	// ModelErrorPct perturbs the controllers' model parameters relative to
	// ground truth (default 4%; negative for a perfect model).
	ModelErrorPct float64
}

// System is an assembled managed cluster: catalog, applications, utility
// and cost models, and workload traces. It is the entry point for running
// controllers.
type System struct {
	lab *experiments.Lab
}

// NewSystem assembles a system.
func NewSystem(opts SystemOptions) (*System, error) {
	if opts.Apps != nil || opts.Hosts != nil {
		return newCustomSystem(opts)
	}
	lab, err := experiments.NewLab(experiments.LabOptions{
		NumApps:       opts.NumApps,
		Seed:          opts.Seed,
		Mode:          opts.Mode,
		ModelErrorPct: opts.ModelErrorPct,
	})
	if err != nil {
		return nil, err
	}
	return &System{lab: lab}, nil
}

// newCustomSystem assembles a system from caller-provided apps/hosts.
func newCustomSystem(opts SystemOptions) (*System, error) {
	apps := opts.Apps
	if apps == nil {
		n := opts.NumApps
		if n <= 0 {
			n = 2
		}
		apps = make([]*AppSpec, n)
		for i := range apps {
			apps[i] = RUBiS(fmt.Sprintf("rubis%d", i+1))
		}
	}
	hosts := opts.Hosts
	if hosts == nil {
		hosts = make([]HostSpec, 2*len(apps))
		for i := range hosts {
			hosts[i] = DefaultHostSpec(fmt.Sprintf("h%d", i))
		}
	}
	cat, err := app.BuildCatalog(hosts, apps)
	if err != nil {
		return nil, err
	}
	initial, err := app.DefaultConfig(cat, apps, len(hosts), 40)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(apps))
	load := make(map[string]float64, len(apps))
	for i, a := range apps {
		names[i] = a.Name
		load[a.Name] = 50
	}
	scale, err := lqn.CalibrateDemands(cat, apps, initial, load, names[0])
	if err != nil {
		return nil, err
	}
	ctrlApps := make([]*AppSpec, len(apps))
	for i, a := range apps {
		ctrlApps[i] = a.Clone(a.Name)
	}
	lab := &experiments.Lab{
		Opts: experiments.LabOptions{
			NumApps:          len(apps),
			NumHosts:         len(hosts),
			Seed:             opts.Seed,
			Mode:             opts.Mode,
			PlanningHeadroom: 0.9,
		},
		Cat:              cat,
		Apps:             apps,
		CtrlApps:         ctrlApps,
		AppNames:         names,
		Util:             PaperUtility(names),
		Costs:            cost.PaperTable(),
		Traces:           workload.PaperWorkloads(opts.Seed, names),
		Initial:          initial,
		CalibrationScale: scale,
	}
	if lab.Opts.Mode == 0 {
		lab.Opts.Mode = testbed.ModeAnalytic
	}
	return &System{lab: lab}, nil
}

// Catalog returns the managed catalog.
func (s *System) Catalog() *Catalog { return s.lab.Cat }

// Apps returns the managed applications.
func (s *System) Apps() []*AppSpec { return s.lab.Apps }

// Utility returns the scoring utility parameters.
func (s *System) Utility() *UtilityParams { return s.lab.Util }

// InitialConfig returns the default configuration (every tier at 40% CPU).
func (s *System) InitialConfig() Config { return s.lab.Initial.Clone() }

// Workloads returns the paper's Fig. 4 traces for this system's apps.
func (s *System) Workloads() WorkloadSet { return s.lab.Traces }

// NewTestbed builds a fresh virtual testbed in the initial configuration.
func (s *System) NewTestbed() (*Testbed, error) { return s.lab.NewTestbed() }

// ControllerOptions configures NewMistral.
type ControllerOptions struct {
	// HostGroups are the 1st-level controllers' scopes; nil creates one
	// group with every host.
	HostGroups [][]string
	// L2Band is the 2nd-level workload band in req/s (default 8).
	L2Band float64
	// Naive selects the naive search instead of Self-Aware A*.
	Naive bool
	// Search tunes the A* search.
	Search SearchOptions
	// Workers bounds the controller's evaluation concurrency (Perf-Pwr
	// sweep arms, search child evaluation, 1st-level fan-out). Zero
	// resolves to min(GOMAXPROCS, 8); 1 is fully serial. Decisions are
	// byte-identical at every setting.
	Workers int
}

// NewMistral builds the hierarchical Mistral controller for this system.
func (s *System) NewMistral(opts ControllerOptions) (*MistralController, error) {
	eval, err := s.lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return strategy.NewMistral(eval, strategy.MistralConfig{
		HostGroups:         opts.HostGroups,
		L2Band:             opts.L2Band,
		Naive:              opts.Naive,
		Search:             opts.Search,
		MonitoringInterval: s.lab.Util.MonitoringInterval,
		Workers:            opts.Workers,
	})
}

// NewPerfPwrBaseline builds the cost-blind Perf-Pwr baseline (§V-C).
func (s *System) NewPerfPwrBaseline() (Decider, error) {
	eval, err := s.lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return strategy.NewPerfPwr(eval), nil
}

// NewPerfCostBaseline builds the power-blind Perf-Cost baseline (§V-C).
func (s *System) NewPerfCostBaseline() (Decider, error) {
	eval, err := s.lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return strategy.NewPerfCost(eval, s.lab.Util)
}

// NewPwrCostBaseline builds the pMapper-style Pwr-Cost baseline (§V-C).
func (s *System) NewPwrCostBaseline() (Decider, error) {
	eval, err := s.lab.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return strategy.NewPwrCost(eval), nil
}

// IdealConfiguration runs the Perf-Pwr optimizer for the given request
// rates: the best performance/power configuration ignoring transient
// costs.
func (s *System) IdealConfiguration(rates map[string]float64) (Ideal, error) {
	eval, err := s.lab.NewEvaluator()
	if err != nil {
		return Ideal{}, err
	}
	return core.PerfPwr(eval, rates, core.PerfPwrOptions{})
}

// Replay drives the system under a strategy. A nil traces set uses the
// paper's Fig. 4 workloads; a zero duration replays the traces fully.
func (s *System) Replay(d Decider, traces WorkloadSet) (*RunResult, error) {
	return s.ReplayFor(d, traces, 0)
}

// ReplayFor is Replay with an explicit duration bound.
func (s *System) ReplayFor(d Decider, traces WorkloadSet, duration time.Duration) (*RunResult, error) {
	if traces == nil {
		traces = s.lab.Traces
	}
	tb, err := s.lab.NewTestbed()
	if err != nil {
		return nil, err
	}
	if err := tb.SetRates(traces.At(0)); err != nil {
		return nil, err
	}
	return scenario.Run(tb, d, scenario.RunConfig{
		Traces:   traces,
		Duration: duration,
		Interval: s.lab.Util.MonitoringInterval,
		Utility:  s.lab.Util,
	})
}
