package mistral_test

import (
	"fmt"
	"time"

	"github.com/mistralcloud/mistral"
)

// ExampleNewSystem builds the paper's 2-application setup, runs the
// hierarchical Mistral controller for half an hour of the Fig. 4 workload
// day, and reports what it did.
func ExampleNewSystem() {
	sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 2, Seed: 42})
	if err != nil {
		fmt.Println("setup:", err)
		return
	}
	ctrl, err := sys.NewMistral(mistral.ControllerOptions{})
	if err != nil {
		fmt.Println("controller:", err)
		return
	}
	res, err := sys.ReplayFor(ctrl, nil, 30*time.Minute)
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	fmt.Printf("windows: %d\n", len(res.Windows))
	fmt.Printf("strategy: %s\n", res.Strategy)
	// Output:
	// windows: 15
	// strategy: Mistral
}

// ExampleSystem_IdealConfiguration shows the Perf-Pwr optimizer
// consolidating at low load.
func ExampleSystem_IdealConfiguration() {
	sys, err := mistral.NewSystem(mistral.SystemOptions{NumApps: 2, Seed: 42})
	if err != nil {
		fmt.Println("setup:", err)
		return
	}
	low, err := sys.IdealConfiguration(map[string]float64{"rubis1": 5, "rubis2": 5})
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}
	high, err := sys.IdealConfiguration(map[string]float64{"rubis1": 90, "rubis2": 90})
	if err != nil {
		fmt.Println("optimize:", err)
		return
	}
	fmt.Printf("consolidates at low load: %v\n", low.Config.NumActiveHosts() < high.Config.NumActiveHosts())
	// Output:
	// consolidates at low load: true
}
